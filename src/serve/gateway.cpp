#include "serve/gateway.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <istream>
#include <optional>
#include <ostream>
#include <thread>

#include "obs/trace.h"
#include "sched/placement.h"
#include "serve/protocol.h"
#include "sim/job.h"

namespace meek::serve {
namespace {

// Translate a worker row's sub-batch request index to the global one in
// place. The writer emits "request" as the first key, so this touches only
// the row's numeric prefix — every other byte passes through verbatim, which
// is what keeps the merged stream byte-identical to a single-process run.
bool rewrite_request_index(std::string* line, u64 global_index) {
    const std::size_t key = line->find("\"request\":");
    if (key == std::string::npos) return false;
    const std::size_t start = key + 10;
    std::size_t end = start;
    while (end < line->size() &&
           std::isdigit(static_cast<unsigned char>((*line)[end]))) {
        ++end;
    }
    if (end == start) return false;
    line->replace(start, end - start, std::to_string(global_index));
    return true;
}

// The sharding cost of one request line: the same estimate the executor uses
// to place the eventual sim jobs, scaled by the request's repeats. Lines that
// do not parse or resolve cost nothing — the worker answers them with one
// error row without simulating.
double line_cost(const parsed_request& parsed) {
    if (!parsed.ok()) return 0.0;
    sim::run_spec spec;
    if (!resolve_request(parsed.request, /*repeat=*/0, &spec).empty()) return 0.0;
    return sim::cost_hint(spec) * static_cast<double>(parsed.request.repeats);
}

// Insert ',"trace":{...}' before the closing brace of a request line the
// gateway verified parses, preserving every other byte — the worker adopts
// the gateway's context and parents its "request" span under our root.
std::string inject_trace_field(const std::string& line, const obs::trace_context& ctx) {
    const std::size_t close = line.rfind('}');
    if (close == std::string::npos) return line;
    std::string out = line.substr(0, close);
    out += ",\"trace\":{\"trace_id\":" + std::to_string(ctx.trace_id) +
           ",\"span_id\":" + std::to_string(ctx.span_id) + "}";
    out += line.substr(close);
    return out;
}

void record_gateway_span(obs::tracer& tracer, u64 trace_id, u64 span_id,
                         u64 parent_span_id, const char* name, u64 begin_ns,
                         u64 end_ns) {
    obs::span_record rec;
    rec.trace_id = trace_id;
    rec.span_id = span_id;
    rec.parent_span_id = parent_span_id;
    rec.begin_ns = begin_ns;
    rec.end_ns = end_ns;
    std::snprintf(rec.name, sizeof rec.name, "%s", name);
    tracer.record(rec);
}

}  // namespace

// One endpoint of the pool: a spawned child process or a connected socket.
struct gateway::worker {
    std::unique_ptr<child_process> proc;
    std::unique_ptr<fd_stream> sock;
    std::optional<endpoint_address> endpoint;  // reconnect target (socket workers)
    bool failed = false;
    std::string failure;  // diagnostic detail (not part of the wire protocol)

    std::iostream* io() {
        if (proc) return &proc->io();
        return sock.get();
    }

    // Revival backoff, in batches: the first retry is immediate, but a
    // worker that keeps failing to come back is retried at doubling
    // intervals (capped) — a dead TCP endpoint means a blocking connect()
    // with no timeout, and paying that stall on every batch would let one
    // unreachable host throttle the whole session.
    u32 retry_backoff = 1;
    u32 batches_until_retry = 0;

    // Session-lifetime observability, surfaced per worker index through
    // gateway::contribute_metrics. error_rows counts both error rows this
    // worker actually returned and rows synthesized for slots it owed when
    // it failed mid-batch; respawns counts successful revivals.
    u64 error_rows = 0;
    u64 respawns = 0;

    void fail(const std::string& why) {
        failed = true;
        if (failure.empty()) failure = why;
    }

    void revive() {
        failed = false;
        failure.clear();
        retry_backoff = 1;
        batches_until_retry = 0;
    }

    void revival_failed() {
        batches_until_retry = retry_backoff;
        retry_backoff = std::min<u32>(retry_backoff * 2, 16);
    }
};

gateway::gateway(const gateway_options& opts) : opts_(opts) {
    if (!opts_.endpoints.empty()) {
        for (const endpoint_address& addr : opts_.endpoints) {
            auto w = std::make_unique<worker>();
            w->endpoint = addr;
            std::string error;
            w->sock = connect_endpoint(addr, &error);
            if (!w->sock) w->fail("connect " + addr.describe() + ": " + error);
            workers_.push_back(std::move(w));
        }
        return;
    }
    for (u32 i = 0; i < opts_.workers; ++i) {
        auto w = std::make_unique<worker>();
        std::string error;
        w->proc = child_process::spawn(opts_.worker_argv, {}, &error);
        if (!w->proc) w->fail("spawn: " + error);
        workers_.push_back(std::move(w));
    }
}

gateway::~gateway() {
    // EOF on every child's stdin first, then reap: a pool of workers shuts
    // down in parallel instead of one blocking wait at a time. A worker that
    // desynced may be deaf to EOF (blocked mid-write, wedged), so failed
    // workers are killed outright — wait() must never hang the front-end.
    for (const auto& w : workers_) {
        if (!w->proc) continue;
        w->proc->close_stdin();
        if (w->failed) w->proc->kill();
    }
    for (const auto& w : workers_) {
        if (w->proc) w->proc->wait();
    }
}

std::size_t gateway::alive_workers() const {
    std::size_t n = 0;
    for (const auto& w : workers_) {
        if (!w->failed) ++n;
    }
    return n;
}

std::size_t gateway::revive_workers() {
    std::size_t revived = 0;
    for (const auto& wp : workers_) {
        worker& w = *wp;
        // A process worker that exited after a clean batch would otherwise be
        // counted healthy until this batch's write came back EPIPE — the
        // "dead worker looks healthy" hole.
        if (!w.failed && w.proc && w.proc->poll_exited()) {
            w.fail("worker exited between batches");
        }
        if (!w.failed) continue;
        if (w.batches_until_retry > 0) {
            --w.batches_until_retry;
            continue;
        }
        if (w.endpoint) {
            std::string error;
            if (auto sock = connect_endpoint(*w.endpoint, &error)) {
                w.sock = std::move(sock);
                w.revive();
                ++w.respawns;
                ++revived;
            } else {
                w.revival_failed();
            }
        } else if (!opts_.worker_argv.empty()) {
            if (w.proc) {
                w.proc->kill();
                w.proc->wait();
            }
            std::string error;
            if (auto proc = child_process::spawn(opts_.worker_argv, {}, &error)) {
                w.proc = std::move(proc);
                w.revive();
                ++w.respawns;
                ++revived;
            } else {
                w.revival_failed();
            }
        }
        // Still failed: the worker stays evicted — the assignment below
        // simply routes nothing to it.
    }
    return revived;
}

std::vector<std::string> gateway::evaluate(const std::vector<std::string>& lines,
                                           gateway_stats* stats) {
    const std::size_t num_workers = workers_.size();
    const std::size_t revived = revive_workers();
    const std::size_t failed_before = num_workers - alive_workers();

    // Per-request bookkeeping, from the gateway's own parse of each line.
    // The worker runs the same parser, so "how many rows does a healthy
    // worker owe for this line" is answerable here: one per repeat, except
    // that any error row settles the request with that single row.
    struct request_state {
        std::size_t owner = 0;  // worker index the line was assigned to
        std::string id;         // echoed into synthesized error rows
        u64 repeats = 1;
        u64 rows_received = 0;
        u64 error_rows = 0;
        bool settled_by_error = false;
        std::vector<std::pair<u64, std::string>> rows;  // (repeat, final line)
    };
    std::vector<request_state> requests(lines.size());

    // Tracing, resolved once per batch: the gateway is the outermost entry
    // point, so each line gets a root "gateway.request" span (trace adopted
    // from an incoming "trace" field, minted otherwise) and — for lines that
    // parse — the context is injected into the forwarded bytes so the
    // worker's own "request" span parents under ours. Virtual-clock ticks
    // run per line timeline, so exported timestamps are worker-count
    // independent.
    obs::tracer& tracer = obs::tracer::instance();
    const bool tracing = tracer.enabled();
    const u64 batch_seq = tracing ? batch_seq_++ : batch_seq_;
    struct line_trace {
        obs::trace_context root;  // {trace id, root "gateway.request" span}
        u64 parent_span = 0;      // adopted caller span (0 when minted)
        u64 root_begin = 0;
        u64 worker_rt_begin = 0;
    };
    std::vector<line_trace> line_traces(tracing ? lines.size() : 0);
    std::vector<bool> inject(lines.size(), false);

    // Pass 1: parse every line once — id/repeats for error-row synthesis,
    // cost for the sharding below. A blank line (possible through the
    // evaluate() API; the stream path filters them) must never reach a
    // worker — it would read as that worker's batch terminator and desync
    // the stream — so it is settled locally with the same error row a
    // single-process service would emit.
    std::vector<double> costs(lines.size(), 0.0);
    std::vector<bool> settled_locally(lines.size(), false);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        request_state& rs = requests[i];
        const parsed_request parsed = parse_request(strip_cr(lines[i]));
        if (parsed.ok()) {
            rs.id = parsed.request.id;
            rs.repeats = parsed.request.repeats;
        }
        costs[i] = line_cost(parsed);
        if (tracing) {
            line_trace& lt = line_traces[i];
            u64 trace_id = 0;
            if (parsed.ok() && parsed.request.trace) {
                trace_id = parsed.request.trace->trace_id;
                lt.parent_span = parsed.request.trace->span_id;
            } else {
                trace_id = obs::mint_trace_id(batch_seq, i);
                // Only lines the gateway verified parse get the context
                // injected: appending to a malformed or stats line would
                // change what the worker answers.
                inject[i] = parsed.ok();
            }
            lt.root.trace_id = trace_id;
            lt.root.span_id =
                obs::derive_span_id(trace_id, lt.parent_span, "gateway.request");
            lt.root_begin = tracer.now_ns(trace_id);
        }
        if (is_blank_line(lines[i])) {
            response_row err;
            err.request_index = i;
            err.error = parsed.error;  // "bad json: ...", as the worker would say
            rs.settled_by_error = true;
            ++rs.error_rows;
            rs.rows.emplace_back(0, to_json(err));
            settled_locally[i] = true;
        }
    }

    // The bytes forwarded to workers: verbatim, except for the injected
    // trace context when tracing.
    std::vector<std::string> traced_lines;
    if (tracing) {
        traced_lines.reserve(lines.size());
        for (std::size_t i = 0; i < lines.size(); ++i) {
            traced_lines.push_back(inject[i]
                                       ? inject_trace_field(lines[i], line_traces[i].root)
                                       : lines[i]);
        }
    }
    const std::vector<std::string>& wire_lines = tracing ? traced_lines : lines;

    // Pass 2: cost-aware sharding over the *live* workers. The assignment is
    // a pure function of (costs, live set), so for a healthy pool it never
    // depends on runtime timing; which worker owns a line can shift when the
    // pool degrades, but row bytes and order are functions of the global
    // index, so the merged output cannot. With no live worker at all, lines
    // keep a nominal owner whose slots the synthesis below fills with error
    // rows.
    std::vector<std::size_t> alive;
    for (std::size_t k = 0; k < num_workers; ++k) {
        if (!workers_[k]->failed) alive.push_back(k);
    }
    std::vector<std::vector<std::size_t>> owned(num_workers);  // global indices
    const std::vector<std::size_t> bins =
        sched::balanced_assignment(costs, std::max<std::size_t>(alive.size(), 1));
    for (std::size_t i = 0; i < lines.size(); ++i) {
        request_state& rs = requests[i];
        if (alive.empty()) {
            rs.owner = num_workers == 0 ? 0 : i % num_workers;
        } else {
            rs.owner = alive[bins[i]];
        }
        if (!settled_locally[i] && num_workers > 0) {
            owned[rs.owner].push_back(i);
        }
    }

    // Fan the sub-batches out, one thread per live worker: write the framed
    // sub-batch, then read rows until the blank end-of-batch marker. Workers
    // complete in any order; per-worker row buckets keep the merge phase
    // deterministic.
    std::vector<std::vector<std::string>> received(num_workers);
    std::vector<std::thread> threads;
    for (std::size_t k = 0; k < num_workers; ++k) {
        if (owned[k].empty() || workers_[k]->failed) continue;
        threads.emplace_back([this, k, &owned, &wire_lines, &received, tracing,
                              &line_traces, &tracer] {
            worker& w = *workers_[k];
            std::iostream& io = *w.io();
            const auto rt_start = std::chrono::steady_clock::now();
            const auto note_rt = [this, rt_start] {
                const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - rt_start);
                worker_rt_ns_.record(d.count() > 0 ? static_cast<u64>(d.count()) : 0);
            };
            if (tracing) {
                // Per-line ticks on the line's own timeline: the values a
                // worker-rt span reads never depend on which worker (or how
                // many) ran the sub-batch.
                for (const std::size_t g : owned[k]) {
                    line_traces[g].worker_rt_begin =
                        tracer.now_ns(line_traces[g].root.trace_id);
                }
            }
            for (const std::size_t g : owned[k]) {
                io << wire_lines[g] << '\n';
            }
            io << '\n';
            io.flush();
            if (!io.good()) {
                w.fail("write to worker failed");
                return;
            }
            std::string line;
            while (std::getline(io, line)) {
                if (is_blank_line(line)) {  // end-of-batch marker
                    note_rt();
                    if (tracing) {
                        for (const std::size_t g : owned[k]) {
                            const line_trace& lt = line_traces[g];
                            record_gateway_span(
                                tracer, lt.root.trace_id,
                                obs::derive_span_id(lt.root.trace_id,
                                                    lt.root.span_id,
                                                    "gateway.worker_rt"),
                                lt.root.span_id, "gateway.worker_rt",
                                lt.worker_rt_begin,
                                tracer.now_ns(lt.root.trace_id));
                        }
                    }
                    return;
                }
                received[k].emplace_back(strip_cr(line));
            }
            w.fail("EOF before end-of-batch marker");
        });
    }
    for (std::thread& t : threads) t.join();

    // Credit every received row to its request: remap the worker-local index,
    // rewrite it in the raw line, and bucket by (global request, repeat). A
    // row that does not parse or points outside the worker's sub-batch means
    // the stream is not trustworthy beyond this point — treat it as a worker
    // failure and let the slot synthesis below cover the remainder.
    for (std::size_t k = 0; k < num_workers; ++k) {
        for (std::string& raw : received[k]) {
            const std::optional<response_row> row = parse_response(raw);
            if (!row || row->request_index >= owned[k].size()) {
                workers_[k]->fail("desynced response stream");
                break;
            }
            const std::size_t g = owned[k][row->request_index];
            std::string line = std::move(raw);
            if (!rewrite_request_index(&line, g)) {
                workers_[k]->fail("desynced response stream");
                break;
            }
            request_state& rs = requests[g];
            ++rs.rows_received;
            if (!row->error.empty()) {
                rs.settled_by_error = true;
                ++rs.error_rows;
                ++workers_[k]->error_rows;
            }
            rs.rows.emplace_back(row->repeat, std::move(line));
        }
    }

    // Fill the slots a failed worker still owed: one error row per missing
    // (request, repeat), in place, so the batch shape survives any worker
    // dying — the contract that makes the gateway safe to put in front of a
    // long-running campaign.
    for (std::size_t g = 0; g < requests.size(); ++g) {
        request_state& rs = requests[g];
        if (rs.settled_by_error) continue;
        const bool owner_failed = num_workers == 0 || workers_[rs.owner]->failed;
        if (!owner_failed) continue;
        // A desynced stream can also carry duplicate or out-of-range repeat
        // indices; keep the first row per valid slot and drop the rest, so
        // the one-row-per-(request, repeat) shape holds no matter what the
        // dying worker emitted.
        std::vector<bool> have(rs.repeats, false);
        std::vector<std::pair<u64, std::string>> kept;
        kept.reserve(rs.rows.size());
        for (auto& [repeat, line] : rs.rows) {
            if (repeat < rs.repeats && !have[repeat]) {
                have[repeat] = true;
                kept.emplace_back(repeat, std::move(line));
            }
        }
        rs.rows = std::move(kept);
        for (u64 r = 0; r < rs.repeats; ++r) {
            if (have[r]) continue;
            response_row err;
            err.request_index = g;
            err.repeat = r;
            err.id = rs.id;
            err.error = "gateway: worker " + std::to_string(rs.owner) +
                        " failed mid-batch";
            ++rs.error_rows;
            if (num_workers > 0) ++workers_[rs.owner]->error_rows;
            rs.rows.emplace_back(r, to_json(err));
        }
    }

    // Merge in global (request, repeat) order.
    std::vector<std::string> out;
    u64 error_rows = 0;
    for (request_state& rs : requests) {
        error_rows += rs.error_rows;
        std::stable_sort(rs.rows.begin(), rs.rows.end(),
                         [](const auto& a, const auto& b) { return a.first < b.first; });
        for (auto& [repeat, line] : rs.rows) {
            out.push_back(std::move(line));
        }
    }

    // Close every line's root span now that its rows are merged.
    if (tracing) {
        for (const line_trace& lt : line_traces) {
            record_gateway_span(tracer, lt.root.trace_id, lt.root.span_id,
                                lt.parent_span, "gateway.request", lt.root_begin,
                                tracer.now_ns(lt.root.trace_id));
        }
    }

    if (stats) {
        stats->requests += lines.size();
        stats->rows += out.size();
        stats->errors += error_rows;
        stats->workers_respawned += revived;
        // Only failures that happened during this batch; a worker lost
        // earlier in the session was already counted.
        stats->worker_failures += (num_workers - alive_workers()) - failed_before;
    }
    return out;
}

bool gateway::serve_batch(std::istream& in, std::ostream& out, gateway_stats* stats,
                          bool framed) {
    const std::vector<std::string> lines = read_batch_lines(in);
    if (lines.empty()) return false;
    for (const std::string& row : evaluate(lines, stats)) {
        out << row << '\n';
    }
    if (framed) out << '\n';
    out.flush();
    return true;
}

gateway_stats gateway::serve_stream(std::istream& in, std::ostream& out, bool framed) {
    gateway_stats total;
    while (serve_batch(in, out, &total, framed)) {
    }
    return total;
}

void gateway::contribute_metrics(obs::metrics_snapshot& snap,
                                 const gateway_stats& totals) const {
    snap.set_counter("gateway.requests", totals.requests);
    snap.set_counter("gateway.rows", totals.rows);
    snap.set_counter("gateway.errors", totals.errors);
    snap.set_counter("gateway.worker_failures", totals.worker_failures);
    snap.set_counter("gateway.workers_respawned", totals.workers_respawned);
    snap.set_gauge("gateway.workers", workers_.size());
    snap.set_gauge("gateway.workers_alive", alive_workers());
    snap.add_histogram("gateway.worker_rt_ns", worker_rt_ns_.snapshot());
    for (std::size_t k = 0; k < workers_.size(); ++k) {
        const std::string p = "gateway.worker." + std::to_string(k);
        snap.set_counter(p + ".error_rows", workers_[k]->error_rows);
        snap.set_counter(p + ".respawns", workers_[k]->respawns);
        snap.set_gauge(p + ".alive", workers_[k]->failed ? 0 : 1);
    }
}

}  // namespace meek::serve
