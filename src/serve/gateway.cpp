#include "serve/gateway.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>

#include "common/log.h"
#include "obs/trace.h"
#include "sched/placement.h"
#include "serve/protocol.h"
#include "sim/job.h"

namespace meek::serve {
namespace {

// Translate a worker row's sub-batch request index to the global one in
// place. The writer emits "request" as the first key, so this touches only
// the row's numeric prefix — every other byte passes through verbatim, which
// is what keeps the merged stream byte-identical to a single-process run.
bool rewrite_request_index(std::string* line, u64 global_index) {
    const std::size_t key = line->find("\"request\":");
    if (key == std::string::npos) return false;
    const std::size_t start = key + 10;
    std::size_t end = start;
    while (end < line->size() &&
           std::isdigit(static_cast<unsigned char>((*line)[end]))) {
        ++end;
    }
    if (end == start) return false;
    line->replace(start, end - start, std::to_string(global_index));
    return true;
}

// The sharding cost of one request line: the same estimate the executor uses
// to place the eventual sim jobs, scaled by the request's repeats. Lines that
// do not parse or resolve cost nothing — the worker answers them with one
// error row without simulating.
double line_cost(const parsed_request& parsed) {
    if (!parsed.ok()) return 0.0;
    sim::run_spec spec;
    if (!resolve_request(parsed.request, /*repeat=*/0, &spec).empty()) return 0.0;
    return sim::cost_hint(spec) * static_cast<double>(parsed.request.repeats);
}

// Insert ',"trace":{...}' before the closing brace of a request line the
// gateway verified parses, preserving every other byte — the worker adopts
// the gateway's context and parents its "request" span under our root.
std::string inject_trace_field(const std::string& line, const obs::trace_context& ctx) {
    const std::size_t close = line.rfind('}');
    if (close == std::string::npos) return line;
    std::string out = line.substr(0, close);
    out += ",\"trace\":{\"trace_id\":" + std::to_string(ctx.trace_id) +
           ",\"span_id\":" + std::to_string(ctx.span_id) + "}";
    out += line.substr(close);
    return out;
}

void record_gateway_span(obs::tracer& tracer, u64 trace_id, u64 span_id,
                         u64 parent_span_id, const char* name, u64 begin_ns,
                         u64 end_ns) {
    obs::span_record rec;
    rec.trace_id = trace_id;
    rec.span_id = span_id;
    rec.parent_span_id = parent_span_id;
    rec.begin_ns = begin_ns;
    rec.end_ns = end_ns;
    std::snprintf(rec.name, sizeof rec.name, "%s", name);
    tracer.record(rec);
}

}  // namespace

// One endpoint of the pool: a spawned child process or a connected socket.
struct gateway::worker {
    std::unique_ptr<child_process> proc;
    std::unique_ptr<fd_stream> sock;
    std::optional<endpoint_address> endpoint;  // reconnect target (socket workers)
    bool failed = false;
    std::string failure;  // diagnostic detail (not part of the wire protocol)

    std::iostream* io() {
        if (proc) return &proc->io();
        return sock.get();
    }

    // Revival backoff, in batches: the first retry is immediate, but a
    // worker that keeps failing to come back is retried at doubling
    // intervals (capped) — a dead TCP endpoint means a blocking connect()
    // with no timeout, and paying that stall on every batch would let one
    // unreachable host throttle the whole session.
    u32 retry_backoff = 1;
    u32 batches_until_retry = 0;

    // Session-lifetime observability, surfaced per worker index through
    // gateway::contribute_metrics. error_rows counts both error rows this
    // worker actually returned and rows synthesized for slots it owed when
    // it failed mid-batch; respawns counts successful revivals.
    u64 error_rows = 0;
    u64 respawns = 0;

    void fail(const std::string& why) {
        failed = true;
        if (failure.empty()) failure = why;
    }

    void revive() {
        failed = false;
        failure.clear();
        retry_backoff = 1;
        batches_until_retry = 0;
    }

    void revival_failed() {
        batches_until_retry = retry_backoff;
        retry_backoff = std::min<u32>(retry_backoff * 2, 16);
    }
};

gateway::gateway(const gateway_options& opts) : opts_(opts), admission_(opts.admission) {
    if (!opts_.endpoints.empty()) {
        for (const endpoint_address& addr : opts_.endpoints) {
            auto w = std::make_unique<worker>();
            w->endpoint = addr;
            std::string error;
            w->sock = connect_endpoint(addr, &error);
            if (!w->sock) w->fail("connect " + addr.describe() + ": " + error);
            workers_.push_back(std::move(w));
        }
        return;
    }
    for (u32 i = 0; i < opts_.workers; ++i) {
        auto w = std::make_unique<worker>();
        std::string error;
        w->proc = child_process::spawn(opts_.worker_argv, {}, &error);
        if (!w->proc) w->fail("spawn: " + error);
        workers_.push_back(std::move(w));
    }
}

gateway::~gateway() {
    // EOF on every child's stdin first, then reap: a pool of workers shuts
    // down in parallel instead of one blocking wait at a time. A worker that
    // desynced may be deaf to EOF (blocked mid-write, wedged), so failed
    // workers are killed outright — wait() must never hang the front-end.
    for (const auto& w : workers_) {
        if (!w->proc) continue;
        w->proc->close_stdin();
        if (w->failed) w->proc->kill();
    }
    for (const auto& w : workers_) {
        if (w->proc) w->proc->wait();
    }
}

std::size_t gateway::alive_workers() const {
    std::size_t n = 0;
    for (const auto& w : workers_) {
        if (!w->failed) ++n;
    }
    return n;
}

std::size_t gateway::revive_workers() {
    std::size_t revived = 0;
    for (const auto& wp : workers_) {
        worker& w = *wp;
        // A process worker that exited after a clean batch would otherwise be
        // counted healthy until this batch's write came back EPIPE — the
        // "dead worker looks healthy" hole.
        if (!w.failed && w.proc && w.proc->poll_exited()) {
            w.fail("worker exited between batches");
        }
        if (!w.failed) continue;
        if (w.batches_until_retry > 0) {
            --w.batches_until_retry;
            continue;
        }
        if (w.endpoint) {
            std::string error;
            if (auto sock = connect_endpoint(*w.endpoint, &error)) {
                w.sock = std::move(sock);
                w.revive();
                ++w.respawns;
                ++revived;
            } else {
                w.revival_failed();
            }
        } else if (!opts_.worker_argv.empty()) {
            if (w.proc) {
                w.proc->kill();
                w.proc->wait();
            }
            std::string error;
            if (auto proc = child_process::spawn(opts_.worker_argv, {}, &error)) {
                w.proc = std::move(proc);
                w.revive();
                ++w.respawns;
                ++revived;
            } else {
                w.revival_failed();
            }
        }
        // Still failed: the worker stays evicted — the assignment below
        // simply routes nothing to it.
    }
    return revived;
}

std::vector<std::string> gateway::evaluate(const std::vector<std::string>& lines,
                                           gateway_stats* stats) {
    std::vector<std::string> out;
    evaluate_streamed(lines, stats, [&out](std::vector<std::string>&& rows) {
        for (std::string& row : rows) out.push_back(std::move(row));
    });
    return out;
}

void gateway::evaluate_streamed(const std::vector<std::string>& lines,
                                gateway_stats* stats, const row_sink& sink) {
    const std::size_t num_workers = workers_.size();
    const std::size_t revived = revive_workers();
    const std::size_t failed_before = num_workers - alive_workers();

    // Per-request bookkeeping, from the gateway's own parse of each line.
    // The worker runs the same parser, so "how many rows does a healthy
    // worker owe for this line" is answerable here: one per repeat, except
    // that any error row settles the request with that single row.
    struct request_state {
        std::size_t owner = 0;  // worker index the line was assigned to
        std::string id;         // echoed into synthesized error rows
        u64 repeats = 1;
        u64 rows_received = 0;
        u64 error_rows = 0;
        bool settled_by_error = false;
        // Streaming emit state: `settled` = every row the request will ever
        // get is in `rows` (worker answered past it, or settled locally);
        // `emitted` = the sink took them.
        bool settled = false;
        bool emitted = false;
        std::vector<std::pair<u64, std::string>> rows;  // (repeat, final line)
    };
    std::vector<request_state> requests(lines.size());

    // The reorder window over requests: the sink takes request g's rows once
    // requests 0..g-1 are out and g has settled. Reader threads advance it
    // concurrently; `emit_mutex` serializes both the window state and the
    // sink itself. Buffered mode is the degenerate case where everything
    // settles before the single final drain.
    std::mutex emit_mutex;
    std::size_t next_emit = 0;
    u64 emitted_rows = 0;
    const auto drain = [&] {  // emit_mutex held
        while (next_emit < requests.size() && requests[next_emit].settled) {
            request_state& rs = requests[next_emit];
            std::stable_sort(
                rs.rows.begin(), rs.rows.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
            std::vector<std::string> batch;
            batch.reserve(rs.rows.size());
            for (auto& [repeat, line] : rs.rows) batch.push_back(std::move(line));
            rs.rows.clear();
            emitted_rows += batch.size();
            rs.emitted = true;
            ++next_emit;
            sink(std::move(batch));
        }
    };

    // Tracing, resolved once per batch: the gateway is the outermost entry
    // point, so each line gets a root "gateway.request" span (trace adopted
    // from an incoming "trace" field, minted otherwise) and — for lines that
    // parse — the context is injected into the forwarded bytes so the
    // worker's own "request" span parents under ours. Virtual-clock ticks
    // run per line timeline, so exported timestamps are worker-count
    // independent.
    obs::tracer& tracer = obs::tracer::instance();
    const bool tracing = tracer.enabled();
    const u64 batch_seq = tracing ? batch_seq_++ : batch_seq_;
    struct line_trace {
        obs::trace_context root;  // {trace id, root "gateway.request" span}
        u64 parent_span = 0;      // adopted caller span (0 when minted)
        u64 root_begin = 0;
        u64 worker_rt_begin = 0;
    };
    std::vector<line_trace> line_traces(tracing ? lines.size() : 0);
    std::vector<bool> inject(lines.size(), false);

    // Pass 1: parse every line once — id/repeats for error-row synthesis,
    // cost for the sharding below. A blank line (possible through the
    // evaluate() API; the stream path filters them) must never reach a
    // worker — it would read as that worker's batch terminator and desync
    // the stream — so it is settled locally with the same error row a
    // single-process service would emit.
    std::vector<double> costs(lines.size(), 0.0);
    std::vector<bool> settled_locally(lines.size(), false);
    std::vector<u64> admitted_bytes;  // queue accounting to retire at the end
    u64 shed = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        request_state& rs = requests[i];
        const parsed_request parsed = parse_request(strip_cr(lines[i]));
        bool line_shed = false;
        if (parsed.ok()) {
            rs.id = parsed.request.id;
            rs.repeats = parsed.request.repeats;
            // Admission gate, at parse time: a shed line settles locally with
            // one overloaded row and is never forwarded — rejected work must
            // not spend worker capacity. Lines that do not parse are free
            // (the worker answers them with one error row, no simulation),
            // and stats probes stay free for the same reason as in
            // serve::service.
            const admission_controller::decision gate =
                admission_.admit_line(lines[i].size(), rs.repeats);
            if (!gate.admit) {
                rs.settled_by_error = true;
                rs.settled = true;
                ++rs.error_rows;
                ++shed;
                rs.rows.emplace_back(
                    0, to_json(overloaded_row(i, gate.retry_after_ms, rs.id)));
                settled_locally[i] = true;
                line_shed = true;
            } else {
                admitted_bytes.push_back(lines[i].size());
            }
        }
        if (!line_shed) costs[i] = line_cost(parsed);
        if (tracing) {
            line_trace& lt = line_traces[i];
            u64 trace_id = 0;
            if (parsed.ok() && parsed.request.trace) {
                trace_id = parsed.request.trace->trace_id;
                lt.parent_span = parsed.request.trace->span_id;
            } else {
                trace_id = obs::mint_trace_id(batch_seq, i);
                // Only lines the gateway verified parse get the context
                // injected: appending to a malformed or stats line would
                // change what the worker answers.
                inject[i] = parsed.ok();
            }
            lt.root.trace_id = trace_id;
            lt.root.span_id =
                obs::derive_span_id(trace_id, lt.parent_span, "gateway.request");
            lt.root_begin = tracer.now_ns(trace_id);
        }
        if (is_blank_line(lines[i])) {
            response_row err;
            err.request_index = i;
            err.error = parsed.error;  // "bad json: ...", as the worker would say
            rs.settled_by_error = true;
            rs.settled = true;
            ++rs.error_rows;
            rs.rows.emplace_back(0, to_json(err));
            settled_locally[i] = true;
        }
    }

    // The bytes forwarded to workers: verbatim, except for the injected
    // trace context when tracing.
    std::vector<std::string> traced_lines;
    if (tracing) {
        traced_lines.reserve(lines.size());
        for (std::size_t i = 0; i < lines.size(); ++i) {
            traced_lines.push_back(inject[i]
                                       ? inject_trace_field(lines[i], line_traces[i].root)
                                       : lines[i]);
        }
    }
    const std::vector<std::string>& wire_lines = tracing ? traced_lines : lines;

    // Pass 2: cost-aware sharding over the *live* workers. The assignment is
    // a pure function of (costs, live set), so for a healthy pool it never
    // depends on runtime timing; which worker owns a line can shift when the
    // pool degrades, but row bytes and order are functions of the global
    // index, so the merged output cannot. With no live worker at all, lines
    // keep a nominal owner whose slots the synthesis below fills with error
    // rows.
    std::vector<std::size_t> alive;
    for (std::size_t k = 0; k < num_workers; ++k) {
        if (!workers_[k]->failed) alive.push_back(k);
    }
    std::vector<std::vector<std::size_t>> owned(num_workers);  // global indices
    const std::vector<std::size_t> bins =
        sched::balanced_assignment(costs, std::max<std::size_t>(alive.size(), 1));
    for (std::size_t i = 0; i < lines.size(); ++i) {
        request_state& rs = requests[i];
        if (alive.empty()) {
            rs.owner = num_workers == 0 ? 0 : i % num_workers;
        } else {
            rs.owner = alive[bins[i]];
        }
        if (!settled_locally[i] && num_workers > 0) {
            owned[rs.owner].push_back(i);
        }
    }

    // Requests settled locally (blank lines, admission shed) at the head of
    // the batch can stream out before any worker responds.
    {
        std::lock_guard lock(emit_mutex);
        drain();
    }

    // Fan the sub-batches out, one thread per live worker: write the framed
    // sub-batch, then read rows until the blank end-of-batch marker. Each
    // row is credited to its request as it arrives — remap the worker-local
    // index, rewrite it in the raw line, bucket by (global request, repeat)
    // — and, since a worker answers its sub-batch in order, a row for local
    // index j settles every owned request before j; the marker settles them
    // all. Settling advances the emit window, so completed requests stream
    // while other workers are still computing. A row that does not parse or
    // points outside the sub-batch means the stream is not trustworthy
    // beyond this point — fail the worker and let the slot synthesis below
    // cover whatever it still owed.
    std::vector<std::thread> threads;
    for (std::size_t k = 0; k < num_workers; ++k) {
        if (owned[k].empty() || workers_[k]->failed) continue;
        threads.emplace_back([this, k, &owned, &wire_lines, &requests, tracing,
                              &line_traces, &tracer, &emit_mutex, &drain] {
            worker& w = *workers_[k];
            std::iostream& io = *w.io();
            const auto rt_start = std::chrono::steady_clock::now();
            const auto note_rt = [this, rt_start] {
                const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - rt_start);
                worker_rt_ns_.record(d.count() > 0 ? static_cast<u64>(d.count()) : 0);
            };
            if (tracing) {
                // Per-line ticks on the line's own timeline: the values a
                // worker-rt span reads never depend on which worker (or how
                // many) ran the sub-batch.
                for (const std::size_t g : owned[k]) {
                    line_traces[g].worker_rt_begin =
                        tracer.now_ns(line_traces[g].root.trace_id);
                }
            }
            for (const std::size_t g : owned[k]) {
                io << wire_lines[g] << '\n';
            }
            io << '\n';
            io.flush();
            if (!io.good()) {
                w.fail("write to worker failed");
                return;
            }
            // Local indices < settled_upto have every row they will get.
            std::size_t settled_upto = 0;
            const auto settle_to = [&](std::size_t local_end) {  // emit_mutex held
                for (; settled_upto < local_end && settled_upto < owned[k].size();
                     ++settled_upto) {
                    requests[owned[k][settled_upto]].settled = true;
                }
            };
            std::string line;
            while (std::getline(io, line)) {
                if (is_blank_line(line)) {  // end-of-batch marker
                    {
                        std::lock_guard lock(emit_mutex);
                        settle_to(owned[k].size());
                        drain();
                    }
                    note_rt();
                    if (tracing) {
                        for (const std::size_t g : owned[k]) {
                            const line_trace& lt = line_traces[g];
                            record_gateway_span(
                                tracer, lt.root.trace_id,
                                obs::derive_span_id(lt.root.trace_id,
                                                    lt.root.span_id,
                                                    "gateway.worker_rt"),
                                lt.root.span_id, "gateway.worker_rt",
                                lt.worker_rt_begin,
                                tracer.now_ns(lt.root.trace_id));
                        }
                    }
                    return;
                }
                std::string raw{strip_cr(line)};
                const std::optional<response_row> row = parse_response(raw);
                if (!row || row->request_index >= owned[k].size()) {
                    w.fail("desynced response stream");
                    return;
                }
                const std::size_t g = owned[k][row->request_index];
                if (!rewrite_request_index(&raw, g)) {
                    w.fail("desynced response stream");
                    return;
                }
                std::lock_guard lock(emit_mutex);
                settle_to(row->request_index);
                request_state& rs = requests[g];
                ++rs.rows_received;
                if (!row->error.empty()) {
                    rs.settled_by_error = true;
                    ++rs.error_rows;
                    ++w.error_rows;
                }
                rs.rows.emplace_back(row->repeat, std::move(raw));
                drain();
            }
            w.fail("EOF before end-of-batch marker");
        });
    }
    for (std::thread& t : threads) t.join();

    // Fill the slots a failed worker still owed: one error row per missing
    // (request, repeat), in place, so the batch shape survives any worker
    // dying — the contract that makes the gateway safe to put in front of a
    // long-running campaign. Requests that already settled (or streamed out)
    // are complete by construction and untouched.
    for (std::size_t g = 0; g < requests.size(); ++g) {
        request_state& rs = requests[g];
        if (rs.emitted || rs.settled) continue;
        if (rs.settled_by_error) {
            rs.settled = true;  // its single error row arrived; nothing owed
            continue;
        }
        const bool owner_failed = num_workers == 0 || workers_[rs.owner]->failed;
        if (!owner_failed) {
            rs.settled = true;  // defensive: a live owner's marker settled it
            continue;
        }
        // A desynced stream can also carry duplicate or out-of-range repeat
        // indices; keep the first row per valid slot and drop the rest, so
        // the one-row-per-(request, repeat) shape holds no matter what the
        // dying worker emitted.
        std::vector<bool> have(rs.repeats, false);
        std::vector<std::pair<u64, std::string>> kept;
        kept.reserve(rs.rows.size());
        for (auto& [repeat, line] : rs.rows) {
            if (repeat < rs.repeats && !have[repeat]) {
                have[repeat] = true;
                kept.emplace_back(repeat, std::move(line));
            }
        }
        rs.rows = std::move(kept);
        for (u64 r = 0; r < rs.repeats; ++r) {
            if (have[r]) continue;
            response_row err;
            err.request_index = g;
            err.repeat = r;
            err.id = rs.id;
            err.error = "gateway: worker " + std::to_string(rs.owner) +
                        " failed mid-batch";
            ++rs.error_rows;
            if (num_workers > 0) ++workers_[rs.owner]->error_rows;
            rs.rows.emplace_back(r, to_json(err));
        }
        rs.settled = true;
    }

    // Final drain: everything has settled, so this flushes the remainder of
    // the window in global (request, repeat) order.
    u64 error_rows = 0;
    {
        std::lock_guard lock(emit_mutex);
        drain();
        for (const request_state& rs : requests) error_rows += rs.error_rows;
    }

    // Close every line's root span now that its rows are merged.
    if (tracing) {
        for (const line_trace& lt : line_traces) {
            record_gateway_span(tracer, lt.root.trace_id, lt.root.span_id,
                                lt.parent_span, "gateway.request", lt.root_begin,
                                tracer.now_ns(lt.root.trace_id));
        }
    }

    for (const u64 bytes : admitted_bytes) admission_.retire_line(bytes);
    total_errors_ += error_rows;
    total_rows_ += emitted_rows;
    if (stats) {
        stats->requests += lines.size();
        stats->rows += emitted_rows;
        stats->errors += error_rows;
        stats->shed += shed;
        stats->workers_respawned += revived;
        // Only failures that happened during this batch; a worker lost
        // earlier in the session was already counted.
        stats->worker_failures += (num_workers - alive_workers()) - failed_before;
    }
}

bool gateway::serve_batch(std::istream& in, std::ostream& out, gateway_stats* stats,
                          bool framed) {
    const batch_read batch = read_batch(in, opts_.limits);
    if (batch.stream_error) {
        if (stats) stats->stream_errors += 1;
        MEEK_LOG(warn,
                 "gateway: input stream died (I/O error, not EOF) after %zu lines",
                 batch.lines.size());
    }
    if (batch.empty()) return false;

    bool aborted = false;
    const auto write_rows = [&](std::vector<std::string>&& rows) {
        if (aborted) return;
        for (const std::string& row : rows) {
            out << row << '\n';
            if (!out) {  // client hung up mid-response
                aborted = true;
                if (stats) stats->client_aborts += 1;
                MEEK_LOG(warn, "gateway: client aborted mid-response");
                return;
            }
        }
        if (opts_.streaming && !rows.empty()) out.flush();
    };

    if (opts_.streaming) {
        evaluate_streamed(batch.lines, stats, write_rows);
    } else {
        std::vector<std::string> rows = evaluate(batch.lines, stats);
        write_rows(std::move(rows));
    }

    // Batch-cap overflow tail: in-slot overloaded rows past the evaluated
    // indices, exactly as serve::service settles them.
    if (batch.overflow_lines > 0) {
        const u64 retry = admission_.options().retry_after_ms;
        std::vector<std::string> tail;
        tail.reserve(batch.overflow_lines);
        for (u64 k = 0; k < batch.overflow_lines; ++k) {
            tail.push_back(to_json(overloaded_row(batch.lines.size() + k, retry)));
        }
        write_rows(std::move(tail));
        admission_.note_batch_overflow(batch.overflow_lines);
        total_rows_ += batch.overflow_lines;
        total_errors_ += batch.overflow_lines;
        if (stats) {
            stats->requests += batch.overflow_lines;
            stats->rows += batch.overflow_lines;
            stats->errors += batch.overflow_lines;
            stats->shed += batch.overflow_lines;
        }
    }

    if (!aborted) {
        if (framed) out << '\n';
        out.flush();
        if (!out) {
            aborted = true;
            if (stats) stats->client_aborts += 1;
        }
    }
    slo_feedback_tick();
    return !aborted && !batch.stream_error;
}

gateway_stats gateway::serve_stream(std::istream& in, std::ostream& out, bool framed) {
    gateway_stats total;
    while (serve_batch(in, out, &total, framed)) {
    }
    return total;
}

void gateway::slo_feedback_tick() {
    if (opts_.slo_feedback.clauses.empty() || !admission_.enabled()) return;
    std::lock_guard lock(slo_mutex_);
    slo_monitor_.observe(worker_rt_ns_.snapshot());
    const std::vector<obs::log_histogram> windows = slo_monitor_.windows();
    const obs::slo_report report = obs::evaluate_slo_windows(
        opts_.slo_feedback, windows, total_errors_, total_rows_);
    admission_.observe_burn_rate(report.max_burn_rate);
}

void gateway::contribute_metrics(obs::metrics_snapshot& snap,
                                 const gateway_stats& totals) const {
    snap.set_counter("gateway.requests", totals.requests);
    snap.set_counter("gateway.rows", totals.rows);
    snap.set_counter("gateway.errors", totals.errors);
    snap.set_counter("gateway.worker_failures", totals.worker_failures);
    snap.set_counter("gateway.workers_respawned", totals.workers_respawned);
    snap.set_counter("gateway.shed", totals.shed);
    snap.set_counter("gateway.stream_errors", totals.stream_errors);
    snap.set_counter("gateway.client_aborts", totals.client_aborts);
    admission_.contribute_metrics(snap);
    snap.set_gauge("gateway.workers", workers_.size());
    snap.set_gauge("gateway.workers_alive", alive_workers());
    snap.add_histogram("gateway.worker_rt_ns", worker_rt_ns_.snapshot());
    for (std::size_t k = 0; k < workers_.size(); ++k) {
        const std::string p = "gateway.worker." + std::to_string(k);
        snap.set_counter(p + ".error_rows", workers_[k]->error_rows);
        snap.set_counter(p + ".respawns", workers_[k]->respawns);
        snap.set_gauge(p + ".alive", workers_[k]->failed ? 0 : 1);
    }
}

}  // namespace meek::serve
