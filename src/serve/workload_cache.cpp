#include "serve/workload_cache.h"

#include <optional>
#include <utility>

namespace meek::serve {

std::size_t workload_cache::key_hash::operator()(const key& k) const {
    // splitmix64-style fold of the three 64-bit components.
    u64 z = k.fingerprint;
    for (const u64 part : {k.instructions, k.seed}) {
        z ^= part + 0x9e3779b97f4a7c15ULL + (z << 6) + (z >> 2);
    }
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
}

workload_cache::workload_cache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const generated_workload> workload_cache::workload_for(
    const workload_profile& profile, u64 target_instructions, u64 seed) {
    if (capacity_ == 0) {
        // Caching disabled: still count the lookup so hit-rate reads 0, and
        // generate a private copy.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.misses;
        }
        return std::make_shared<const generated_workload>(
            generate_workload(profile, target_instructions, seed));
    }

    const key k{profile_fingerprint(profile), target_instructions, seed};
    std::optional<std::promise<std::shared_ptr<const generated_workload>>> my_promise;
    u64 my_id = 0;
    future_t fut;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = index_.find(k);
        if (it != index_.end()) {
            ++stats_.hits;
            // Touch: move to the LRU front. Joining an in-flight generation
            // counts as a hit — the program is still built only once.
            lru_.splice(lru_.begin(), lru_, it->second);
            fut = it->second->ready;
        } else {
            ++stats_.misses;
            my_promise.emplace();
            my_id = next_id_++;
            fut = my_promise->get_future().share();
            lru_.push_front(entry{k, my_id, fut});
            index_[k] = lru_.begin();
            while (lru_.size() > capacity_) {
                index_.erase(lru_.back().k);
                lru_.pop_back();
                ++stats_.evictions;
            }
        }
    }

    if (my_promise) {
        // We inserted the entry: generate outside the lock so distinct keys
        // build in parallel, then publish to every waiter.
        try {
            my_promise->set_value(std::make_shared<const generated_workload>(
                generate_workload(profile, target_instructions, seed)));
        } catch (...) {
            my_promise->set_exception(std::current_exception());
            // Forget the poisoned entry (if it has not been evicted and is
            // still ours) so a later request can retry.
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = index_.find(k);
            if (it != index_.end() && it->second->id == my_id) {
                lru_.erase(it->second);
                index_.erase(it);
            }
        }
    }
    return fut.get();
}

workload_cache_stats workload_cache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t workload_cache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

void workload_cache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
}

}  // namespace meek::serve
