#include "serve/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "serve/json.h"

namespace meek::serve {

namespace {

u64 steady_now_ns() {
    return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now().time_since_epoch())
                                .count());
}

}  // namespace

u64 admission_controller::effective(u64 limit) const {
    if (limit == 0) return 0;
    u64 scaled = static_cast<u64>(static_cast<double>(limit) * scale_);
    return std::max<u64>(scaled, 1);
}

admission_controller::decision admission_controller::admit_line(u64 line_bytes,
                                                                u64 estimated_jobs,
                                                                u64 now_ns) {
    std::lock_guard lock(mutex_);
    if (!opts_.enabled) {
        ++stats_.admitted;
        queued_lines_ += 1;
        queued_bytes_ += line_bytes;
        return {};
    }

    decision shed;
    shed.admit = false;
    // Scale the resubmit hint with pressure: a tightened service (scale < 1)
    // wants clients backing off longer, not hammering the floor.
    shed.retry_after_ms =
        static_cast<u64>(std::ceil(static_cast<double>(opts_.retry_after_ms) / scale_));

    // A line's fan-out counts against the in-flight cap before its jobs are
    // actually submitted, else N lines race past a nearly-full executor.
    if (u64 cap = effective(opts_.max_inflight_jobs);
        cap != 0 && inflight_jobs_ + estimated_jobs > cap && inflight_jobs_ > 0) {
        ++stats_.shed;
        ++stats_.shed_inflight;
        shed.reason = "inflight";
        return shed;
    }
    if (u64 cap = effective(opts_.max_queue_lines); cap != 0 && queued_lines_ >= cap) {
        ++stats_.shed;
        ++stats_.shed_queue_lines;
        shed.reason = "queue_lines";
        return shed;
    }
    if (u64 cap = effective(opts_.max_queue_bytes);
        cap != 0 && queued_bytes_ + line_bytes > cap && queued_bytes_ > 0) {
        ++stats_.shed;
        ++stats_.shed_queue_bytes;
        shed.reason = "queue_bytes";
        return shed;
    }
    if (opts_.line_rate > 0.0) {
        if (now_ns == 0) now_ns = steady_now_ns();
        double burst = static_cast<double>(std::max<u64>(opts_.line_burst, 1)) * scale_;
        burst = std::max(burst, 1.0);
        if (tokens_ < 0.0) {
            tokens_ = burst;  // bucket starts full
        } else if (now_ns > last_refill_ns_) {
            double dt_s = static_cast<double>(now_ns - last_refill_ns_) * 1e-9;
            tokens_ = std::min(burst, tokens_ + dt_s * opts_.line_rate * scale_);
        }
        last_refill_ns_ = now_ns;
        if (tokens_ < 1.0) {
            ++stats_.shed;
            ++stats_.shed_line_rate;
            shed.reason = "line_rate";
            return shed;
        }
        tokens_ -= 1.0;
    }

    ++stats_.admitted;
    queued_lines_ += 1;
    queued_bytes_ += line_bytes;
    return {};
}

void admission_controller::retire_line(u64 line_bytes) {
    std::lock_guard lock(mutex_);
    if (queued_lines_ > 0) --queued_lines_;
    queued_bytes_ -= std::min(queued_bytes_, line_bytes);
}

void admission_controller::jobs_started(u64 n) {
    std::lock_guard lock(mutex_);
    inflight_jobs_ += n;
}

void admission_controller::jobs_finished(u64 n) {
    std::lock_guard lock(mutex_);
    inflight_jobs_ -= std::min(inflight_jobs_, n);
}

void admission_controller::note_batch_overflow(u64 lines) {
    if (lines == 0) return;
    std::lock_guard lock(mutex_);
    stats_.shed += lines;
    stats_.shed_batch_limit += lines;
}

void admission_controller::observe_burn_rate(double burn_rate) {
    std::lock_guard lock(mutex_);
    if (!opts_.enabled) return;
    if (burn_rate > 1.0) {
        double next = std::max(scale_ * opts_.tighten_factor, opts_.min_scale);
        if (next < scale_) {
            scale_ = next;
            ++stats_.slo_tightenings;
        }
    } else if (scale_ < 1.0) {
        scale_ = std::min(scale_ * opts_.recover_factor, 1.0);
        ++stats_.slo_recoveries;
    }
}

u64 admission_controller::inflight_jobs() const {
    std::lock_guard lock(mutex_);
    return inflight_jobs_;
}

u64 admission_controller::queued_lines() const {
    std::lock_guard lock(mutex_);
    return queued_lines_;
}

u64 admission_controller::queued_bytes() const {
    std::lock_guard lock(mutex_);
    return queued_bytes_;
}

double admission_controller::scale() const {
    std::lock_guard lock(mutex_);
    return scale_;
}

admission_stats admission_controller::stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
}

void admission_controller::contribute_metrics(obs::metrics_snapshot& snap) const {
    admission_stats s;
    u64 inflight, qlines, qbytes;
    double scale;
    bool enabled;
    {
        std::lock_guard lock(mutex_);
        s = stats_;
        inflight = inflight_jobs_;
        qlines = queued_lines_;
        qbytes = queued_bytes_;
        scale = scale_;
        enabled = opts_.enabled;
    }
    snap.set_counter("admission.admitted", s.admitted);
    snap.set_counter("admission.shed", s.shed);
    snap.set_counter("admission.shed_inflight", s.shed_inflight);
    snap.set_counter("admission.shed_queue_lines", s.shed_queue_lines);
    snap.set_counter("admission.shed_queue_bytes", s.shed_queue_bytes);
    snap.set_counter("admission.shed_line_rate", s.shed_line_rate);
    snap.set_counter("admission.shed_batch_limit", s.shed_batch_limit);
    snap.set_counter("admission.slo_tightenings", s.slo_tightenings);
    snap.set_counter("admission.slo_recoveries", s.slo_recoveries);
    snap.set_gauge("admission.enabled", enabled ? 1 : 0);
    snap.set_gauge("admission.inflight_jobs", inflight);
    snap.set_gauge("admission.queued_lines", qlines);
    snap.set_gauge("admission.queued_bytes", qbytes);
    // scale is in (0, 1]; export in parts-per-million so the integer gauge
    // keeps enough resolution to watch recovery climb.
    snap.set_gauge("admission.scale_ppm", static_cast<u64>(scale * 1e6));
}

std::string admission_controller::to_json() const {
    admission_options o;
    admission_stats s;
    u64 inflight, qlines, qbytes;
    double scale;
    {
        std::lock_guard lock(mutex_);
        o = opts_;
        s = stats_;
        inflight = inflight_jobs_;
        qlines = queued_lines_;
        qbytes = queued_bytes_;
        scale = scale_;
    }
    json_object_writer w;
    w.field("enabled", o.enabled);
    {
        json_object_writer limits;
        limits.field("max_inflight_jobs", o.max_inflight_jobs);
        limits.field("max_queue_lines", o.max_queue_lines);
        limits.field("max_queue_bytes", o.max_queue_bytes);
        limits.field_fixed("line_rate", o.line_rate, 3);
        limits.field("line_burst", o.line_burst);
        limits.field("retry_after_ms", o.retry_after_ms);
        w.field_raw("limits", limits.str());
    }
    w.field_fixed("scale", scale, 6);
    {
        json_object_writer live;
        live.field("inflight_jobs", inflight);
        live.field("queued_lines", qlines);
        live.field("queued_bytes", qbytes);
        w.field_raw("live", live.str());
    }
    {
        json_object_writer shed;
        shed.field("admitted", s.admitted);
        shed.field("shed", s.shed);
        shed.field("inflight", s.shed_inflight);
        shed.field("queue_lines", s.shed_queue_lines);
        shed.field("queue_bytes", s.shed_queue_bytes);
        shed.field("line_rate", s.shed_line_rate);
        shed.field("batch_limit", s.shed_batch_limit);
        shed.field("slo_tightenings", s.slo_tightenings);
        shed.field("slo_recoveries", s.slo_recoveries);
        w.field_raw("ledger", shed.str());
    }
    return w.str();
}

}  // namespace meek::serve
