// Content-addressed workload cache: the core of the serving layer.
//
// Generated programs are immutable, expensive to build, and shared by every
// scenario that evaluates the same (profile, instructions, seed) point — a
// batch that runs vanilla + three MEEK configs over one workload needs the
// program once, not four times. Entries are keyed on the profile's content
// fingerprint (not its name) plus the dynamic length and generation seed, so
// a tweaked profile can never alias a stale program.
//
// Concurrency: safe to call from any executor worker. The first requester of
// a key generates while holding only a per-entry future — concurrent
// requesters of the *same* key block on that future (the program is built
// exactly once), requesters of different keys generate in parallel. A lookup
// that joins an in-flight generation counts as a hit.
//
// Bounded: LRU over completed and in-flight entries with a fixed capacity;
// capacity 0 disables caching entirely (every call generates privately),
// which is how cache-on/off equivalence is tested.
#pragma once

#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "workloads/generator.h"

namespace meek::serve {

struct workload_cache_stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 evictions = 0;

    u64 lookups() const { return hits + misses; }
    double hit_rate() const {
        const u64 total = lookups();
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

class workload_cache final : public workload_source {
public:
    explicit workload_cache(std::size_t capacity = 64);

    // workload_source: returns the cached program, generating it on first
    // request. Propagates a generation exception to every waiter of that key
    // and forgets the entry so a later request can retry.
    std::shared_ptr<const generated_workload> workload_for(
        const workload_profile& profile, u64 target_instructions, u64 seed) override;

    workload_cache_stats stats() const;
    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    void clear();

private:
    struct key {
        u64 fingerprint = 0;
        u64 instructions = 0;
        u64 seed = 0;
        bool operator==(const key&) const = default;
    };
    struct key_hash {
        std::size_t operator()(const key& k) const;
    };
    using future_t = std::shared_future<std::shared_ptr<const generated_workload>>;
    struct entry {
        key k;
        u64 id = 0;  // insertion tag: lets a failed producer erase only its own entry
        future_t ready;
    };

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::list<entry> lru_;  // front = most recently used
    std::unordered_map<key, std::list<entry>::iterator, key_hash> index_;
    workload_cache_stats stats_;
    u64 next_id_ = 1;
};

}  // namespace meek::serve
