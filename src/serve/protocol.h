// The serve wire protocol: line-delimited JSON in both directions.
//
// Request (one object per line):
//   {"scenario":"meek/f2/opt/4","workload":"hmmer",
//    "instructions":20000,"seed":7,"repeats":2,"id":"client-tag"}
//
//   * "scenario"     — a sim registry name ("vanilla", "ea-lockstep", "nzdc",
//                      "meek/<f2|axi>/<opt|def>/<cores>"), or the literal
//                      "meek" to build one from the inline knobs below.
//   * "cores"/"fabric"/"tuning" — inline MEEK knobs ("fabric": "f2"|"axi",
//                      "tuning": "opt"|"def"); only legal with scenario
//                      "meek", where they default to 4/f2/opt.
//   * "workload"     — a workload profile name (required).
//   * "instructions" — dynamic length (default 200000).
//   * "seed"         — workload generation seed (default 0xC0FFEE).
//   * "repeats"      — number of evaluations; repeat r>0 re-generates the
//                      workload with derive_stream_seed(seed, r), repeat 0
//                      uses `seed` itself (default 1, at most 1000000 — a
//                      request is also an allocation bound downstream).
//   * "id"           — opaque client tag echoed into every response row.
//   * "trace"        — optional {"trace_id":N,"span_id":N} trace context
//                      (both unsigned; trace_id nonzero). A service that
//                      receives one continues the caller's trace instead of
//                      minting its own; absent => old behavior, byte for
//                      byte. The gateway injects this into forwarded lines.
//
// Unknown fields are an error: a typo must not silently evaluate defaults.
//
// Response (one object per (request, repeat), in request order):
//   {"request":0,"repeat":0,"id":"client-tag","scenario":"meek/f2/opt/4",
//    "workload":"hmmer","seed":7,"cycles":..,"instructions":..,
//    "ipc":1.234567,"verified_ok":true,"skipped":false,
//    "replayed_instructions":..,"checker_compute_cycles":..,
//    "stall_collecting":..,"stall_forwarding":..,"stall_checker":..}
// or, for a request that failed to parse or resolve:
//   {"request":3,"repeat":0,"id":"client-tag","error":"unknown workload 'x'"}
// or, for a request shed by admission control or the batch buffering caps
// (one row, settling the whole request regardless of its repeats):
//   {"request":5,"repeat":0,"id":"client-tag","error":"overloaded",
//    "retry_after_ms":100}
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "sim/job.h"
#include "sim/scenario.h"

namespace meek::serve {

// ---------------------------------------------------------- batch framing ---
//
// A batch on a stream is a run of non-blank lines terminated by a blank line
// or EOF. Framing normalizes line endings: a trailing '\r' (CRLF clients —
// telnet, Windows sockets) is stripped here so the JSON layer never sees it
// and a CRLF batch is byte-identical to an LF one.

// `line` minus one trailing '\r', if present.
std::string_view strip_cr(std::string_view line);

// Blank for framing purposes: empty or whitespace-only (after CR strip).
bool is_blank_line(std::string_view line);

// Memory bounds on one buffered batch. A connection may not make the server
// buffer unbounded text before any evaluation starts: lines past either cap
// are read (to stay framed) but their content is discarded, and each becomes
// an in-slot "overloaded" error row downstream. 0 = unlimited.
struct batch_limits {
    u64 max_lines = 65'536;        // request lines buffered per batch
    u64 max_bytes = 64u << 20;     // request bytes buffered per batch
};

// One batch off a stream, with its framing diagnostics. `lines` holds the
// admitted (CR-stripped) request lines; `overflow_lines` counts lines past
// the batch_limits caps — they occupy request indices
// [lines.size(), lines.size() + overflow_lines) but their content was
// discarded. `stream_error` distinguishes a stream that *died* (in.bad() — an
// I/O error on a socket, a throwing streambuf) from a clean end-of-stream;
// the two must not be conflated or a flaky transport looks like a polite
// client hanging up.
struct batch_read {
    std::vector<std::string> lines;
    u64 overflow_lines = 0;
    bool stream_error = false;
    bool empty() const { return lines.empty() && overflow_lines == 0; }
};

// Read one batch: skips leading blank lines, collects CR-stripped request
// lines until a blank line or EOF, enforcing `limits`. An empty() result
// means `in` was exhausted before any request line.
batch_read read_batch(std::istream& in, const batch_limits& limits = {});

// Legacy unbounded view of read_batch (tests, simple drivers): just the
// admitted lines, default limits.
std::vector<std::string> read_batch_lines(std::istream& in);

// One evaluation request, as parsed from a single NDJSON line.
struct run_request {
    std::string id;        // optional client tag, echoed back verbatim
    std::string scenario;  // registry name, or "meek" + inline knobs
    std::optional<u64> cores;
    std::optional<std::string> fabric;  // "f2" | "axi"
    std::optional<std::string> tuning;  // "opt" | "def"
    std::string workload;
    u64 instructions = 200'000;
    u64 seed = 0xC0FFEE;
    u64 repeats = 1;
    // Wire trace context ("trace" field): present => the service adopts the
    // caller's trace for this line instead of minting one.
    std::optional<obs::trace_context> trace;
};

// Parse one request line. Exactly one of (request, error) is meaningful:
// empty error => request is valid.
struct parsed_request {
    run_request request;
    std::string error;
    bool ok() const { return error.empty(); }
};
parsed_request parse_request(std::string_view line);

// Serialize a request back to its wire form (serve_bench builds batches with
// this; omits fields that hold their defaults only for id/knobs).
std::string to_json(const run_request& req);

// Resolve the scenario reference (registry name or inline knobs) and the
// workload profile into a run_spec for repeat `repeat`. Returns an error
// message, or "" on success.
std::string resolve_request(const run_request& req, u64 repeat, sim::run_spec* out);

// A stats request line — `{"stats":true}` with an optional `"id"` — asks the
// service for one observability row instead of an evaluation:
//   {"request":N,"repeat":0,("id":...,)"stats":{...meek.stats.v1 document...}}
// Returns true when `line` is such a request; `out_id` (optional) receives
// the echoed id. Any other fields, or "stats" not literally true, make the
// line an ordinary (and thus erroring) run request — a typo must not
// silently turn into a stats probe.
bool parse_stats_request(std::string_view line, std::string* out_id = nullptr);

// One NDJSON response row.
struct response_row {
    u64 request_index = 0;
    u64 repeat = 0;
    std::string id;
    std::string error;  // nonempty => the outcome fields are absent
    // Overload shedding hint ("retry_after_ms" field, emitted when nonzero):
    // rides only on "overloaded" error rows, telling the client when to
    // resubmit the shed request. Round-trips through parse_response.
    u64 retry_after_ms = 0;
    u64 seed = 0;       // the workload seed this repeat actually used
    // Optional trace correlation ("trace_id" field, emitted when nonzero).
    // The service deliberately never sets it — response bytes stay identical
    // with tracing on — but the field round-trips for clients that do.
    u64 trace_id = 0;
    // In-process only, never serialized: the line's trace so serve_batch can
    // record serialization spans after evaluate() has closed the root.
    obs::trace_context trace;
    sim::run_outcome outcome;
    // Pre-serialized row (stats rows): when nonempty, to_json() emits it
    // verbatim — it must start with the "request" field like every row, so
    // the gateway's index rewrite applies unchanged.
    std::string raw;
};

std::string to_json(const response_row& row);

// The in-slot shed row: {"request":N,...,"error":"overloaded",
// "retry_after_ms":M}. One of these settles a whole request (admission shed,
// batch-limit overflow) regardless of its repeats.
response_row overloaded_row(u64 request_index, u64 retry_after_ms,
                            std::string id = {});

// Parse a response row (the serve_bench client side, and round-trip tests).
// Returns nullopt and sets `error` on malformed input.
std::optional<response_row> parse_response(std::string_view line,
                                           std::string* error = nullptr);

}  // namespace meek::serve
