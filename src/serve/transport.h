// Serve transports: the byte-stream layer under the NDJSON wire protocol.
//
// The protocol itself (serve/protocol.h) is transport-agnostic — batches of
// request lines in, response rows out. This header provides the streams those
// batches travel over:
//
//   * `fd_stream`    — a std::iostream over POSIX file descriptors (a socket,
//                      or a pipe pair to a child process), with a half-close
//                      (`close_write`) so a client can signal end-of-input
//                      while still draining responses;
//   * `listener`     — a bound TCP or Unix-domain socket accepting one
//                      `fd_stream` per client connection;
//   * `connect_endpoint` — the client side of the same two address families;
//   * `child_process`    — a worker subprocess with its stdin/stdout wired to
//                      an `fd_stream`, the process-pool transport used by the
//                      gateway and by sharded search dispatch;
//   * `serve_connections` — the accept loop that turns a serve::service into
//                      a network daemon (`meek_serve --listen`).
//
// Endpoint addresses are spelled
//   "tcp:HOST:PORT"  (or plain "HOST:PORT"; port 0 binds an ephemeral port)
//   "unix:PATH"      (Unix-domain stream socket)
//
// Over sockets (and over `--framed` stdio) response batches are *framed*: the
// rows of one batch are followed by a single blank line, mirroring the
// request framing, so a client can detect end-of-batch without counting rows
// and a truncated stream (worker death) is distinguishable from a complete
// one. Plain stdio stays unframed for diffable golden output.
//
// POSIX-only by design; the first stream construction ignores SIGPIPE
// process-wide so a dead peer surfaces as a stream error, not a signal.
#pragma once

#include <atomic>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace meek::serve {

class service;

// ------------------------------------------------------------- addresses ---

enum class endpoint_kind : u8 { tcp, unix_socket };

struct endpoint_address {
    endpoint_kind kind = endpoint_kind::tcp;
    std::string host;  // tcp only
    u16 port = 0;      // tcp only; 0 => ephemeral (listeners)
    std::string path;  // unix only

    std::string describe() const;
};

// Parse "tcp:HOST:PORT", "HOST:PORT", ":PORT" (host => 127.0.0.1) or
// "unix:PATH". Returns nullopt and sets `error` on a malformed spec.
std::optional<endpoint_address> parse_endpoint(std::string_view spec,
                                               std::string* error = nullptr);

// -------------------------------------------------------------- fd stream ---

// Buffered std::iostream over a (read fd, write fd) pair — the same fd twice
// for a socket, two pipe ends for a child process. Owns and closes the fds.
class fd_stream : public std::iostream {
public:
    // `write_is_socket` selects shutdown(SHUT_WR) vs close() in close_write().
    fd_stream(int read_fd, int write_fd, bool write_is_socket);
    ~fd_stream() override;

    fd_stream(const fd_stream&) = delete;
    fd_stream& operator=(const fd_stream&) = delete;

    // Half-close: flush and signal EOF to the peer while keeping the read
    // side open. The blank-line batch protocol needs this to say "no more
    // batches" and still drain the last rows.
    void close_write();

private:
    class buf;
    std::unique_ptr<buf> buf_;
};

// --------------------------------------------------------------- sockets ---

// A bound, listening server socket. `open` returns nullptr and sets `error`
// when binding fails (address in use, bad path, a unix path held by a live
// daemon or occupied by a non-socket file, ...). A unix path left behind by
// a dead daemon is detected by a probe connect and reclaimed.
class listener {
public:
    ~listener();
    listener(const listener&) = delete;
    listener& operator=(const listener&) = delete;

    static std::unique_ptr<listener> open(const endpoint_address& addr,
                                          std::string* error = nullptr);

    // Block for the next client; nullptr once close() was called or on a
    // fatal accept error.
    std::unique_ptr<fd_stream> accept();

    // The address actually bound — for tcp port 0 this carries the kernel-
    // assigned port, which is what a test or a log line needs to publish.
    const endpoint_address& address() const { return addr_; }

    // Stop accepting: wakes a blocked accept(), which then returns nullptr.
    // Safe to call from another thread (the shutdown path of a daemon); the
    // fd is only closed — and a unix socket path only unlinked — by the
    // destructor, so no accept() can race a recycled descriptor.
    void close();

private:
    listener(int fd, endpoint_address addr) : fd_(fd), addr_(std::move(addr)) {}
    const int fd_;
    std::atomic<bool> closing_{false};
    endpoint_address addr_;
};

// Client side: connect to a listening endpoint. nullptr + `error` on failure.
std::unique_ptr<fd_stream> connect_endpoint(const endpoint_address& addr,
                                            std::string* error = nullptr);

// --------------------------------------------------------- child process ---

struct spawn_options {
    // Redirect the child's stdout to /dev/null instead of the pipe — for
    // workers driven through side-channel files (sharded search) whose stdout
    // is noise to the parent.
    bool stdout_to_null = false;
};

// A worker subprocess: argv[0] is resolved via PATH, the child's stdin is the
// stream's write side and its stdout the read side; stderr passes through.
class child_process {
public:
    ~child_process();  // closes the stream and reaps the child (best effort)
    child_process(const child_process&) = delete;
    child_process& operator=(const child_process&) = delete;

    static std::unique_ptr<child_process> spawn(const std::vector<std::string>& argv,
                                                const spawn_options& opts = {},
                                                std::string* error = nullptr);

    fd_stream& io() { return *io_; }
    void close_stdin() { io_->close_write(); }

    // Wait for exit; returns the exit status (or -signal when killed). Safe
    // to call once; subsequent calls return the cached status.
    int wait();

    // Non-blocking exit probe (waitpid WNOHANG): true once the child is gone,
    // reaping it as a side effect. The gateway runs this between batches so a
    // worker that crashed after a clean batch is respawned up front instead
    // of being discovered by the next batch's failed write.
    bool poll_exited();

    void kill();  // SIGKILL, for tests and shutdown paths

private:
    child_process(int pid, std::unique_ptr<fd_stream> io)
        : pid_(pid), io_(std::move(io)) {}
    int pid_ = -1;
    std::unique_ptr<fd_stream> io_;
    bool reaped_ = false;
    int status_ = -1;
};

// ------------------------------------------------------------ accept loop ---

struct serve_connections_options {
    u64 max_connections = 0;  // 0 => until close()/accept failure
    bool framed = true;       // socket clients get framed batches
    // Connections served simultaneously (floored at 1): a small fixed accept
    // pool. The listener stops accepting while `accept_threads` connections
    // are open, so the pool size is also the concurrent-client cap.
    u32 accept_threads = 4;
};

struct serve_connections_stats {
    u64 connections = 0;
    u64 requests = 0;
    u64 rows = 0;
    u64 errors = 0;
    u64 jobs = 0;
};

// The network daemon loop: accept clients onto a fixed pool of handler
// threads, each running svc.serve_stream until its client's EOF (the service
// is shared — its executor, caches and stats are all thread-safe). Returns
// once `max_connections` clients were served or the listener was closed
// (from another thread, for shutdown).
//
// The `max_connections` budget is enforced per connection, not per process:
// a budget slot is reserved when a connection is accepted and refunded if the
// connection turns out to be a probe (zero requests — a health check, or
// another listener::open deciding whether this path is live), so probes can
// never shut a live daemon down. Once the budget is reserved the loop stops
// accepting, waits for the in-flight connections to drain, and returns.
serve_connections_stats serve_connections(service& svc, listener& lis,
                                          const serve_connections_options& opts = {});

}  // namespace meek::serve
