#include "serve/service.h"

#include <chrono>
#include <cstdio>
#include <istream>
#include <ostream>

#include "obs/stats_json.h"
#include "obs/trace.h"
#include "serve/json.h"

namespace meek::serve {
namespace {

using clock = std::chrono::steady_clock;

u64 elapsed_ns(clock::time_point from, clock::time_point to) {
    const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(to - from);
    return d.count() > 0 ? static_cast<u64>(d.count()) : 0;
}

}  // namespace

service::service(const service_options& opts)
    : cache_(opts.cache_capacity),
      outcomes_(opts.outcome_capacity),
      pool_(opts.threads) {}

std::vector<response_row> service::evaluate(const std::vector<std::string>& lines,
                                            batch_stats* stats) {
    // Stage histograms, resolved once per batch: recording is relaxed-atomic.
    obs::atomic_log_histogram& parse_ns = metrics_.get_histogram("service.parse_ns");
    obs::atomic_log_histogram& resolve_ns =
        metrics_.get_histogram("service.resolve_ns");
    obs::atomic_log_histogram& execute_ns =
        metrics_.get_histogram("service.execute_ns");
    obs::atomic_log_histogram& request_ns =
        metrics_.get_histogram("service.request_ns");

    // Tracing, resolved once per batch. Each line gets a trace: adopted from
    // the wire's "trace" field when present, minted from (batch, line)
    // otherwise — both pure functions of the input, so ids are identical at
    // any thread count. Under the virtual clock, session-thread spans tick
    // on the line's own timeline (= trace id) and executor job spans on the
    // job's span id, so timestamps are schedule-independent too.
    obs::tracer& tracer = obs::tracer::instance();
    const bool tracing = tracer.enabled();
    const bool wall_clock = tracer.clock_mode() == obs::trace_clock_mode::wall;
    const u64 batch_seq = tracing ? batch_seq_++ : batch_seq_;

    struct line_trace {
        obs::trace_context root;  // {trace id, root "request" span id}
        u64 parent_span = 0;      // adopted caller span (0 when minted)
        u64 root_begin = 0;
    };
    std::vector<line_trace> line_traces(tracing ? lines.size() : 0);
    std::vector<clock::time_point> line_started(lines.size());
    std::vector<obs::trace_context> job_traces;  // parallel to `specs`

    // Phase 1: parse and resolve every line on the session thread; collect
    // the dispatchable specs in (request, repeat) order.
    struct slot {
        response_row row;            // id/error prefilled; outcome filled later
        std::size_t spec_index = 0;  // into `specs` when error is empty
        bool stats_row = false;      // filled from the snapshot after merging
    };
    std::vector<slot> slots;
    std::vector<sim::run_spec> specs;
    bool any_stats_row = false;

    for (std::size_t i = 0; i < lines.size(); ++i) {
        const auto parse_start = clock::now();
        line_started[i] = parse_start;
        // Wall-mode span timestamps come from the tracer's own clock, and
        // the parse span starts before the trace id is known — take the
        // pre-parse reading on the (ignored) zero timeline. Virtual mode
        // must not tick a foreign timeline; it stamps after minting instead.
        const u64 pre_parse_ns = tracing && wall_clock ? tracer.now_ns(0) : 0;

        std::string stats_id;
        bool line_parsed_ok = false;
        parsed_request parsed;
        const bool is_stats = parse_stats_request(strip_cr(lines[i]), &stats_id);
        if (!is_stats) {
            parsed = parse_request(strip_cr(lines[i]));
            line_parsed_ok = parsed.ok();
        }
        parse_ns.record(elapsed_ns(parse_start, clock::now()));

        if (tracing) {
            line_trace& lt = line_traces[i];
            u64 trace_id = 0;
            if (line_parsed_ok && parsed.request.trace) {
                trace_id = parsed.request.trace->trace_id;
                lt.parent_span = parsed.request.trace->span_id;
            } else {
                trace_id = obs::mint_trace_id(batch_seq, i);
            }
            lt.root.trace_id = trace_id;
            lt.root.span_id =
                obs::derive_span_id(trace_id, lt.parent_span, "request");
            lt.root_begin = wall_clock ? pre_parse_ns : tracer.now_ns(trace_id);

            obs::span_record parse_span;
            parse_span.trace_id = trace_id;
            parse_span.parent_span_id = lt.root.span_id;
            parse_span.span_id =
                obs::derive_span_id(trace_id, lt.root.span_id, "parse");
            parse_span.begin_ns =
                wall_clock ? pre_parse_ns : tracer.now_ns(trace_id);
            parse_span.end_ns = tracer.now_ns(trace_id);
            std::snprintf(parse_span.name, sizeof parse_span.name, "parse");
            tracer.record(parse_span);
        }

        if (is_stats) {
            slot s;
            s.row.request_index = i;
            s.row.id = std::move(stats_id);
            s.stats_row = true;
            any_stats_row = true;
            if (tracing) s.row.trace = {line_traces[i].root.trace_id, 0};
            slots.push_back(std::move(s));
            continue;
        }
        if (!line_parsed_ok) {
            slot s;
            s.row.request_index = i;
            s.row.error = parsed.error;
            if (tracing) s.row.trace = {line_traces[i].root.trace_id, 0};
            slots.push_back(std::move(s));
            continue;
        }
        const run_request& req = parsed.request;
        for (u64 r = 0; r < req.repeats; ++r) {
            slot s;
            s.row.request_index = i;
            s.row.repeat = r;
            s.row.id = req.id;
            if (tracing) s.row.trace = {line_traces[i].root.trace_id, 0};
            sim::run_spec spec;
            const auto resolve_start = clock::now();
            obs::trace_span resolve_span(
                tracing ? line_traces[i].root : obs::trace_context{}, "resolve", r);
            const std::string err = resolve_request(req, r, &spec);
            resolve_span.close();
            resolve_ns.record(elapsed_ns(resolve_start, clock::now()));
            if (!err.empty()) {
                s.row.error = err;
                slots.push_back(std::move(s));
                break;  // a request that cannot resolve yields one error row
            }
            spec.workloads = &cache_;
            s.row.seed = spec.workload_seed;
            s.spec_index = specs.size();
            specs.push_back(std::move(spec));
            if (tracing) job_traces.push_back(line_traces[i].root);
            slots.push_back(std::move(s));
        }
    }

    // Phase 2: fan the jobs out — longest spec first, through the completed-
    // result cache so a repeated identical evaluation is free; results return
    // in spec order. One execute-stage sample per batch: the end-to-end fan-
    // out wall time (per-job queue-wait/run splits live in the pool
    // histograms and, when tracing, in per-job queue_wait/run spans).
    const auto execute_start = clock::now();
    const std::vector<sim::run_outcome> outcomes = pool_.map(
        specs, /*base_seed=*/0,
        [this](const sim::run_spec& spec, const sim::job_context&) {
            return outcomes_.outcome_for(spec);
        },
        [](const sim::run_spec& spec) { return sim::cost_hint(spec); }, job_traces);
    if (!specs.empty()) execute_ns.record(elapsed_ns(execute_start, clock::now()));

    // Phase 3: merge outcomes back into their slots.
    std::vector<response_row> rows;
    rows.reserve(slots.size());
    u64 errors = 0;
    for (slot& s : slots) {
        if (s.row.error.empty() && !s.stats_row) {
            s.row.outcome = outcomes[s.spec_index];
        }
        if (!s.row.error.empty()) ++errors;
        rows.push_back(std::move(s.row));
    }

    // Per-line bookkeeping now that every row is settled: the end-to-end
    // request latency (what an SLO on this service is evaluated against —
    // recorded tracing or not), and the root span close.
    const auto batch_end = clock::now();
    for (std::size_t i = 0; i < lines.size(); ++i) {
        request_ns.record(elapsed_ns(line_started[i], batch_end));
        if (!tracing) continue;
        const line_trace& lt = line_traces[i];
        obs::span_record root;
        root.trace_id = lt.root.trace_id;
        root.span_id = lt.root.span_id;
        root.parent_span_id = lt.parent_span;
        root.begin_ns = lt.root_begin;
        root.end_ns = tracer.now_ns(lt.root.trace_id);
        std::snprintf(root.name, sizeof root.name, "request");
        tracer.record(root);
    }

    if (stats) {
        stats->requests += lines.size();
        stats->rows += rows.size();
        stats->jobs += specs.size();
        stats->errors += errors;
    }
    metrics_.get_counter("service.requests").add(lines.size());
    metrics_.get_counter("service.rows").add(rows.size());
    metrics_.get_counter("service.jobs").add(specs.size());
    metrics_.get_counter("service.errors").add(errors);

    // Stats rows last: the snapshot includes this batch's own counters and
    // spans (minus serialization, which has not happened yet), and is built
    // once however many stats lines the batch carried.
    if (any_stats_row) {
        const std::string snapshot_json = obs::stats_json(stats_snapshot());
        for (std::size_t k = 0; k < rows.size(); ++k) {
            if (!slots[k].stats_row) continue;
            json_object_writer w;
            w.field("request", rows[k].request_index);
            w.field("repeat", u64{0});
            if (!rows[k].id.empty()) w.field("id", rows[k].id);
            w.field_raw("stats", snapshot_json);
            rows[k].raw = w.str();
        }
    }
    return rows;
}

bool service::serve_batch(std::istream& in, std::ostream& out, batch_stats* stats,
                          bool framed) {
    const std::vector<std::string> lines = read_batch_lines(in);
    if (lines.empty()) return false;

    obs::atomic_log_histogram& serialize_ns =
        metrics_.get_histogram("service.serialize_ns");
    for (const response_row& row : evaluate(lines, stats)) {
        const auto start = clock::now();
        // The root "request" span closed inside evaluate(), so serialization
        // records as a second top-level span of the same trace (row.trace
        // carries {trace id, parent 0}; zero when tracing is off).
        obs::trace_span span(row.trace, "serialize", row.repeat);
        const std::string json = to_json(row);
        span.close();
        serialize_ns.record(elapsed_ns(start, clock::now()));
        out << json << '\n';
    }
    if (framed) out << '\n';  // end-of-batch marker, mirroring request framing
    out.flush();
    return true;
}

batch_stats service::serve_stream(std::istream& in, std::ostream& out, bool framed) {
    batch_stats total;
    while (serve_batch(in, out, &total, framed)) {
    }
    return total;
}

obs::metrics_snapshot service::stats_snapshot() const {
    obs::metrics_snapshot snap = metrics_.snapshot();
    const workload_cache_stats cs = cache_.stats();
    snap.set_counter("workload_cache.hits", cs.hits);
    snap.set_counter("workload_cache.misses", cs.misses);
    snap.set_counter("workload_cache.evictions", cs.evictions);
    snap.set_gauge("workload_cache.size", cache_.size());
    const outcome_cache_stats os = outcomes_.stats();
    snap.set_counter("outcome_cache.hits", os.hits);
    snap.set_counter("outcome_cache.misses", os.misses);
    snap.set_counter("outcome_cache.evictions", os.evictions);
    snap.set_gauge("outcome_cache.size", outcomes_.size());
    pool_.contribute_metrics(snap);
    return snap;
}

}  // namespace meek::serve
