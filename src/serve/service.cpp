#include "serve/service.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <istream>
#include <ostream>

#include "common/log.h"
#include "obs/stats_json.h"
#include "obs/trace.h"
#include "serve/json.h"

namespace meek::serve {
namespace {

using clock = std::chrono::steady_clock;

u64 elapsed_ns(clock::time_point from, clock::time_point to) {
    const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(to - from);
    return d.count() > 0 ? static_cast<u64>(d.count()) : 0;
}

// Trace bookkeeping for one request line.
struct line_trace {
    obs::trace_context root;  // {trace id, root "request" span id}
    u64 parent_span = 0;      // adopted caller span (0 when minted)
    u64 root_begin = 0;
};

// One request line, parsed/resolved/admitted into response slots — the unit
// shared by the buffered and streaming paths so their rows are built by the
// same code and stay byte-identical.
struct parsed_line {
    struct item {
        response_row row;            // id/error/seed prefilled
        bool has_spec = false;       // true => specs[spec] is dispatchable
        bool stats_row = false;      // row body built from a stats snapshot
        std::size_t spec = 0;        // index into `specs` when has_spec
    };
    std::vector<item> items;          // in repeat order
    std::vector<sim::run_spec> specs;  // this line's dispatchable specs
    bool admitted = false;            // counted into admission queue accounting
    bool shed = false;                // settled with an "overloaded" row
};

// Parse one line into its response slots: stats probe, parse error, shed
// "overloaded" row, or one slot per repeat with a resolved spec. Identical
// work and identical per-timeline tracer ticks on both serve paths — that is
// the streaming byte/trace determinism contract in one place.
parsed_line parse_one_line(std::string_view raw_line, std::size_t index,
                           u64 batch_seq, bool tracing, bool wall_clock,
                           obs::tracer& tracer,
                           obs::atomic_log_histogram& parse_ns,
                           obs::atomic_log_histogram& resolve_ns,
                           workload_cache* cache, admission_controller& admission,
                           line_trace* lt) {
    parsed_line out;
    const auto parse_start = clock::now();
    // Wall-mode span timestamps come from the tracer's own clock, and the
    // parse span starts before the trace id is known — take the pre-parse
    // reading on the (ignored) zero timeline. Virtual mode must not tick a
    // foreign timeline; it stamps after minting instead.
    const u64 pre_parse_ns = tracing && wall_clock ? tracer.now_ns(0) : 0;

    std::string stats_id;
    bool line_parsed_ok = false;
    parsed_request parsed;
    const bool is_stats = parse_stats_request(strip_cr(raw_line), &stats_id);
    if (!is_stats) {
        parsed = parse_request(strip_cr(raw_line));
        line_parsed_ok = parsed.ok();
    }
    parse_ns.record(elapsed_ns(parse_start, clock::now()));

    if (tracing) {
        u64 trace_id = 0;
        if (line_parsed_ok && parsed.request.trace) {
            trace_id = parsed.request.trace->trace_id;
            lt->parent_span = parsed.request.trace->span_id;
        } else {
            trace_id = obs::mint_trace_id(batch_seq, index);
        }
        lt->root.trace_id = trace_id;
        lt->root.span_id = obs::derive_span_id(trace_id, lt->parent_span, "request");
        lt->root_begin = wall_clock ? pre_parse_ns : tracer.now_ns(trace_id);

        obs::span_record parse_span;
        parse_span.trace_id = trace_id;
        parse_span.parent_span_id = lt->root.span_id;
        parse_span.span_id = obs::derive_span_id(trace_id, lt->root.span_id, "parse");
        parse_span.begin_ns = wall_clock ? pre_parse_ns : tracer.now_ns(trace_id);
        parse_span.end_ns = tracer.now_ns(trace_id);
        std::snprintf(parse_span.name, sizeof parse_span.name, "parse");
        tracer.record(parse_span);
    }

    if (is_stats) {
        parsed_line::item s;
        s.row.request_index = index;
        s.row.id = std::move(stats_id);
        s.stats_row = true;
        if (tracing) s.row.trace = {lt->root.trace_id, 0};
        out.items.push_back(std::move(s));
        return out;
    }
    if (!line_parsed_ok) {
        parsed_line::item s;
        s.row.request_index = index;
        s.row.error = parsed.error;
        if (tracing) s.row.trace = {lt->root.trace_id, 0};
        out.items.push_back(std::move(s));
        return out;
    }

    const run_request& req = parsed.request;

    // Admission gate, at line-parse time: only lines that would queue real
    // work are offered (stats probes stay free — they are how an operator
    // watches an overloaded service; malformed lines never queue anything).
    // A shed line settles with ONE row regardless of its repeats.
    const admission_controller::decision gate =
        admission.admit_line(raw_line.size(), req.repeats);
    if (!gate.admit) {
        parsed_line::item s;
        s.row = overloaded_row(index, gate.retry_after_ms, req.id);
        if (tracing) s.row.trace = {lt->root.trace_id, 0};
        out.items.push_back(std::move(s));
        out.shed = true;
        return out;
    }
    out.admitted = true;

    for (u64 r = 0; r < req.repeats; ++r) {
        parsed_line::item s;
        s.row.request_index = index;
        s.row.repeat = r;
        s.row.id = req.id;
        if (tracing) s.row.trace = {lt->root.trace_id, 0};
        sim::run_spec spec;
        const auto resolve_start = clock::now();
        obs::trace_span resolve_span(tracing ? lt->root : obs::trace_context{},
                                     "resolve", r);
        const std::string err = resolve_request(req, r, &spec);
        resolve_span.close();
        resolve_ns.record(elapsed_ns(resolve_start, clock::now()));
        if (!err.empty()) {
            s.row.error = err;
            out.items.push_back(std::move(s));
            break;  // a request that cannot resolve yields one error row
        }
        spec.workloads = cache;
        s.row.seed = spec.workload_seed;
        s.has_spec = true;
        s.spec = out.specs.size();
        out.specs.push_back(std::move(spec));
        out.items.push_back(std::move(s));
    }
    return out;
}

// Close a line's root "request" span.
void close_root_span(obs::tracer& tracer, const line_trace& lt) {
    obs::span_record root;
    root.trace_id = lt.root.trace_id;
    root.span_id = lt.root.span_id;
    root.parent_span_id = lt.parent_span;
    root.begin_ns = lt.root_begin;
    root.end_ns = tracer.now_ns(lt.root.trace_id);
    std::snprintf(root.name, sizeof root.name, "request");
    tracer.record(root);
}

}  // namespace

service::service(const service_options& opts)
    : opts_(opts),
      cache_(opts.cache_capacity),
      outcomes_(opts.outcome_capacity),
      admission_(opts.admission),
      pool_(opts.threads) {}

std::vector<response_row> service::evaluate(const std::vector<std::string>& lines,
                                            batch_stats* stats) {
    // Stage histograms, resolved once per batch: recording is relaxed-atomic.
    obs::atomic_log_histogram& parse_ns = metrics_.get_histogram("service.parse_ns");
    obs::atomic_log_histogram& resolve_ns =
        metrics_.get_histogram("service.resolve_ns");
    obs::atomic_log_histogram& execute_ns =
        metrics_.get_histogram("service.execute_ns");
    obs::atomic_log_histogram& request_ns =
        metrics_.get_histogram("service.request_ns");

    // Tracing, resolved once per batch. Each line gets a trace: adopted from
    // the wire's "trace" field when present, minted from (batch, line)
    // otherwise — both pure functions of the input, so ids are identical at
    // any thread count. Under the virtual clock, session-thread spans tick
    // on the line's own timeline (= trace id) and executor job spans on the
    // job's span id, so timestamps are schedule-independent too.
    obs::tracer& tracer = obs::tracer::instance();
    const bool tracing = tracer.enabled();
    const bool wall_clock = tracer.clock_mode() == obs::trace_clock_mode::wall;
    const u64 batch_seq = tracing ? batch_seq_++ : batch_seq_;

    std::vector<line_trace> line_traces(tracing ? lines.size() : 0);
    std::vector<clock::time_point> line_started(lines.size());
    std::vector<obs::trace_context> job_traces;  // parallel to `specs`

    // Phase 1: parse, resolve, and admit every line on the session thread;
    // collect the dispatchable specs in (request, repeat) order.
    struct slot {
        response_row row;            // id/error prefilled; outcome filled later
        std::size_t spec_index = 0;  // into `specs` when dispatchable
        bool has_spec = false;
        bool stats_row = false;      // filled from the snapshot after merging
    };
    std::vector<slot> slots;
    std::vector<sim::run_spec> specs;
    std::vector<u64> admitted_bytes;  // queue accounting to retire after merge
    bool any_stats_row = false;
    u64 shed = 0;
    line_trace scratch_trace;

    for (std::size_t i = 0; i < lines.size(); ++i) {
        line_started[i] = clock::now();
        line_trace& lt = tracing ? line_traces[i] : scratch_trace;
        parsed_line pl =
            parse_one_line(lines[i], i, batch_seq, tracing, wall_clock, tracer,
                           parse_ns, resolve_ns, &cache_, admission_, &lt);
        if (pl.admitted) admitted_bytes.push_back(lines[i].size());
        if (pl.shed) ++shed;
        for (parsed_line::item& it : pl.items) {
            slot s;
            s.row = std::move(it.row);
            s.stats_row = it.stats_row;
            if (it.stats_row) any_stats_row = true;
            if (it.has_spec) {
                s.has_spec = true;
                s.spec_index = specs.size() + it.spec;
            }
            slots.push_back(std::move(s));
        }
        for (sim::run_spec& spec : pl.specs) {
            specs.push_back(std::move(spec));
            if (tracing) job_traces.push_back(lt.root);
        }
    }

    // Phase 2: fan the jobs out — longest spec first, through the completed-
    // result cache so a repeated identical evaluation is free; results return
    // in spec order. One execute-stage sample per batch: the end-to-end fan-
    // out wall time (per-job queue-wait/run splits live in the pool
    // histograms and, when tracing, in per-job queue_wait/run spans).
    const auto execute_start = clock::now();
    admission_.jobs_started(specs.size());
    const std::vector<sim::run_outcome> outcomes = pool_.map(
        specs, /*base_seed=*/0,
        [this](const sim::run_spec& spec, const sim::job_context&) {
            return outcomes_.outcome_for(spec);
        },
        [](const sim::run_spec& spec) { return sim::cost_hint(spec); }, job_traces);
    admission_.jobs_finished(specs.size());
    if (!specs.empty()) execute_ns.record(elapsed_ns(execute_start, clock::now()));

    // Phase 3: merge outcomes back into their slots. Simulated-work totals
    // are summed over the outcomes (cache hits included: a served result
    // represents that much simulated work regardless of where it came from),
    // so they are deterministic at any thread count.
    u64 sim_instructions = 0;
    u64 sim_big_cycles = 0;
    for (const sim::run_outcome& o : outcomes) {
        sim_instructions += o.instructions;
        sim_big_cycles += o.cycles;
    }
    std::vector<response_row> rows;
    rows.reserve(slots.size());
    u64 errors = 0;
    for (slot& s : slots) {
        if (s.has_spec) s.row.outcome = outcomes[s.spec_index];
        if (!s.row.error.empty()) ++errors;
        rows.push_back(std::move(s.row));
    }
    for (const u64 bytes : admitted_bytes) admission_.retire_line(bytes);

    // Per-line bookkeeping now that every row is settled: the end-to-end
    // request latency (what an SLO on this service is evaluated against —
    // recorded tracing or not), and the root span close.
    const auto batch_end = clock::now();
    for (std::size_t i = 0; i < lines.size(); ++i) {
        request_ns.record(elapsed_ns(line_started[i], batch_end));
        if (tracing) close_root_span(tracer, line_traces[i]);
    }

    if (stats) {
        stats->requests += lines.size();
        stats->rows += rows.size();
        stats->jobs += specs.size();
        stats->errors += errors;
        stats->shed += shed;
    }
    metrics_.get_counter("service.requests").add(lines.size());
    metrics_.get_counter("service.rows").add(rows.size());
    metrics_.get_counter("service.jobs").add(specs.size());
    metrics_.get_counter("service.errors").add(errors);
    metrics_.get_counter("sim.instructions").add(sim_instructions);
    metrics_.get_counter("sim.big_cycles").add(sim_big_cycles);

    // Stats rows last: the snapshot includes this batch's own counters and
    // spans (minus serialization, which has not happened yet), and is built
    // once however many stats lines the batch carried.
    if (any_stats_row) {
        const std::string snapshot_json = obs::stats_json(stats_snapshot());
        for (std::size_t k = 0; k < rows.size(); ++k) {
            if (!slots[k].stats_row) continue;
            json_object_writer w;
            w.field("request", rows[k].request_index);
            w.field("repeat", u64{0});
            if (!rows[k].id.empty()) w.field("id", rows[k].id);
            w.field_raw("stats", snapshot_json);
            rows[k].raw = w.str();
        }
    }
    return rows;
}

bool service::serve_batch(std::istream& in, std::ostream& out, batch_stats* stats,
                          bool framed) {
    if (opts_.streaming) return serve_batch_streaming(in, out, stats, framed);

    const batch_read batch = read_batch(in, opts_.limits);
    if (batch.stream_error) {
        metrics_.get_counter("service.stream_errors").add(1);
        if (stats) stats->stream_errors += 1;
        MEEK_LOG(warn, "serve: input stream died (I/O error, not EOF) after %zu lines",
                 batch.lines.size());
    }
    if (batch.empty()) return false;

    std::vector<response_row> rows = evaluate(batch.lines, stats);

    // The buffering-cap overflow tail: those lines hold request indices past
    // the evaluated ones but their content was discarded at read time — each
    // settles with an in-slot overloaded row, consistent with admission
    // shedding, so no accepted line is ever silently dropped.
    if (batch.overflow_lines > 0) {
        const u64 retry = admission_.options().retry_after_ms;
        for (u64 k = 0; k < batch.overflow_lines; ++k) {
            rows.push_back(overloaded_row(batch.lines.size() + k, retry));
        }
        admission_.note_batch_overflow(batch.overflow_lines);
        if (stats) {
            stats->requests += batch.overflow_lines;
            stats->rows += batch.overflow_lines;
            stats->errors += batch.overflow_lines;
            stats->shed += batch.overflow_lines;
        }
        metrics_.get_counter("service.requests").add(batch.overflow_lines);
        metrics_.get_counter("service.rows").add(batch.overflow_lines);
        metrics_.get_counter("service.errors").add(batch.overflow_lines);
    }

    obs::atomic_log_histogram& serialize_ns =
        metrics_.get_histogram("service.serialize_ns");
    bool aborted = false;
    for (const response_row& row : rows) {
        const auto start = clock::now();
        // The root "request" span closed inside evaluate(), so serialization
        // records as a second top-level span of the same trace (row.trace
        // carries {trace id, parent 0}; zero when tracing is off).
        obs::trace_span span(row.trace, "serialize", row.repeat);
        const std::string json = to_json(row);
        span.close();
        serialize_ns.record(elapsed_ns(start, clock::now()));
        out << json << '\n';
        if (!out) {  // client hung up mid-response (SIGPIPE ignored => badbit)
            aborted = true;
            break;
        }
    }
    if (!aborted && framed) out << '\n';  // end-of-batch marker
    out.flush();
    if (!out) aborted = true;
    if (aborted) {
        metrics_.get_counter("service.client_aborts").add(1);
        if (stats) stats->client_aborts += 1;
        MEEK_LOG(warn, "serve: client aborted mid-response, dropping connection");
    }
    slo_feedback_tick();
    return !aborted && !batch.stream_error;
}

bool service::serve_batch_streaming(std::istream& in, std::ostream& out,
                                    batch_stats* stats, bool framed) {
    obs::atomic_log_histogram& parse_ns = metrics_.get_histogram("service.parse_ns");
    obs::atomic_log_histogram& resolve_ns =
        metrics_.get_histogram("service.resolve_ns");
    obs::atomic_log_histogram& request_ns =
        metrics_.get_histogram("service.request_ns");
    obs::atomic_log_histogram& serialize_ns =
        metrics_.get_histogram("service.serialize_ns");
    // Simulated-work totals, recorded per completed job from the worker-side
    // hook (relaxed atomic adds — order-free, so deterministic sums).
    obs::counter& sim_instructions = metrics_.get_counter("sim.instructions");
    obs::counter& sim_big_cycles = metrics_.get_counter("sim.big_cycles");

    obs::tracer& tracer = obs::tracer::instance();
    const bool tracing = tracer.enabled();
    const bool wall_clock = tracer.clock_mode() == obs::trace_clock_mode::wall;
    const u64 batch_seq = tracing ? batch_seq_++ : batch_seq_;

    // The reorder window: rows in global (request, repeat) order; row k is
    // written once rows 0..k-1 are out and k is ready, so the byte stream is
    // exactly the buffered path's at any thread count — completion order
    // only decides *when* the prefix advances. A deque keeps element
    // references stable while the session thread appends.
    struct pending {
        response_row row;
        bool ready = false;
        bool stats_row = false;
        // Set on a line's last row: settle-time bookkeeping.
        bool line_last = false;
        bool line_admitted = false;
        u64 line_bytes = 0;
        clock::time_point line_started{};
        line_trace lt;  // root span, closed at settle (tracing only)
    };
    struct stream_state {
        std::mutex m;
        std::condition_variable cv;
        std::deque<pending> rows;
        std::size_t next_emit = 0;
        bool aborted = false;
    } st;

    // Emit every ready row at the front of the window. Called with st.m held,
    // from the session thread (new ready-at-parse rows) and from pool workers
    // (completion hooks) — the mutex is the only writer gate on `out`.
    auto drain = [&](stream_state& state) {
        bool wrote = false;
        while (state.next_emit < state.rows.size() &&
               state.rows[state.next_emit].ready) {
            pending& p = state.rows[state.next_emit];
            if (p.stats_row && p.row.raw.empty()) {
                // Built lazily at emission: the snapshot sees every batch
                // counter and row settled before this probe's slot.
                json_object_writer w;
                w.field("request", p.row.request_index);
                w.field("repeat", u64{0});
                if (!p.row.id.empty()) w.field("id", p.row.id);
                w.field_raw("stats", obs::stats_json(stats_snapshot()));
                p.row.raw = w.str();
            }
            const auto start = clock::now();
            obs::trace_span span(p.row.trace, "serialize", p.row.repeat);
            const std::string json = to_json(p.row);
            span.close();
            serialize_ns.record(elapsed_ns(start, clock::now()));
            if (!state.aborted) {
                out << json << '\n';
                if (!out) {
                    state.aborted = true;
                    metrics_.get_counter("service.client_aborts").add(1);
                    MEEK_LOG(warn,
                             "serve: client aborted mid-response (streaming), "
                             "dropping connection");
                } else {
                    wrote = true;
                }
            }
            if (p.line_last) {
                request_ns.record(elapsed_ns(p.line_started, clock::now()));
                if (p.line_admitted) admission_.retire_line(p.line_bytes);
                if (tracing) close_root_span(tracer, p.lt);
            }
            ++state.next_emit;
        }
        // Flush per drained run of completed requests — the streaming
        // latency win; a blocked client is caught here as an abort too.
        if (wrote) {
            out.flush();
            if (!out && !state.aborted) {
                state.aborted = true;
                metrics_.get_counter("service.client_aborts").add(1);
            }
        }
    };

    // The session thread's input loop: read, parse, dispatch, line by line.
    std::string raw;
    bool saw_any = false;
    u64 line_index = 0;
    u64 buffered_bytes = 0;
    u64 jobs = 0;
    u64 shed = 0;
    u64 overflow = 0;
    line_trace scratch_trace;
    while (std::getline(in, raw)) {
        const std::string_view line = strip_cr(raw);
        if (is_blank_line(line)) {
            if (saw_any) break;  // end-of-batch marker
            continue;            // leading blank lines separate batches
        }
        saw_any = true;
        const std::size_t i = line_index++;

        // The same per-batch buffering caps read_batch enforces: past either
        // cap the line's content is dropped and its slot settles immediately
        // with an overloaded row (0 = unlimited).
        const bool over_lines = opts_.limits.max_lines != 0 && i >= opts_.limits.max_lines;
        const bool over_bytes = opts_.limits.max_bytes != 0 &&
                                buffered_bytes + line.size() > opts_.limits.max_bytes;
        if (over_lines || over_bytes) {
            ++overflow;
            std::lock_guard lock(st.m);
            pending p;
            p.row = overloaded_row(i, admission_.options().retry_after_ms);
            p.ready = true;
            st.rows.push_back(std::move(p));
            drain(st);
            continue;
        }
        buffered_bytes += line.size();

        const auto line_started = clock::now();
        line_trace& lt = scratch_trace;
        lt = line_trace{};
        parsed_line pl =
            parse_one_line(line, i, batch_seq, tracing, wall_clock, tracer,
                           parse_ns, resolve_ns, &cache_, admission_, &lt);
        if (pl.shed) ++shed;
        jobs += pl.specs.size();

        // Append this line's slots to the window and submit its jobs. The
        // completion hook fills the slot and advances the prefix; ready-at-
        // parse slots (errors, shed, stats) can emit right now.
        std::size_t first_row;
        {
            std::lock_guard lock(st.m);
            first_row = st.rows.size();
            for (std::size_t k = 0; k < pl.items.size(); ++k) {
                parsed_line::item& it = pl.items[k];
                pending p;
                p.row = std::move(it.row);
                p.stats_row = it.stats_row;
                p.ready = !it.has_spec;
                if (k + 1 == pl.items.size()) {
                    p.line_last = true;
                    p.line_admitted = pl.admitted;
                    p.line_bytes = line.size();
                    p.line_started = line_started;
                    p.lt = lt;
                }
                st.rows.push_back(std::move(p));
            }
            drain(st);
        }
        for (std::size_t k = 0; k < pl.items.size(); ++k) {
            const parsed_line::item& it = pl.items[k];
            if (!it.has_spec) continue;
            admission_.jobs_started(1);
            sim::run_spec spec = std::move(pl.specs[it.spec]);
            pool_.submit_indexed(
                first_row + k, /*base_seed=*/0,
                [this, spec = std::move(spec)](const sim::job_context&) {
                    return outcomes_.outcome_for(spec);
                },
                [this, &st, &drain, &sim_instructions, &sim_big_cycles](
                    const sim::job_context& ctx, sim::run_outcome result,
                    std::exception_ptr error) {
                    admission_.jobs_finished(1);
                    std::lock_guard lock(st.m);
                    pending& p = st.rows[ctx.index];
                    if (error) {
                        // The buffered path rethrows to the caller; a
                        // streaming row may already have neighbors on the
                        // wire, so the exception settles in-slot instead.
                        try {
                            std::rethrow_exception(error);
                        } catch (const std::exception& e) {
                            p.row.error = e.what();
                        } catch (...) {
                            p.row.error = "job failed";
                        }
                    } else {
                        sim_instructions.add(result.instructions);
                        sim_big_cycles.add(result.cycles);
                        p.row.outcome = std::move(result);
                    }
                    p.ready = true;
                    drain(st);
                    st.cv.notify_all();
                },
                tracing ? lt.root : obs::trace_context{});
        }
    }
    const bool stream_error = in.bad();
    if (stream_error) {
        metrics_.get_counter("service.stream_errors").add(1);
        if (stats) stats->stream_errors += 1;
        MEEK_LOG(warn,
                 "serve: input stream died (I/O error, not EOF) after %llu lines",
                 static_cast<unsigned long long>(line_index));
    }

    // Wait for the window to drain: every row emitted (or skipped post-
    // abort) means every outstanding job has completed, so stack captures in
    // the hooks above cannot outlive this frame.
    u64 total_rows, errors;
    bool aborted;
    {
        std::unique_lock lock(st.m);
        st.cv.wait(lock, [&] { return st.next_emit == st.rows.size(); });
        total_rows = st.rows.size();
        errors = 0;
        for (const pending& p : st.rows) {
            if (!p.row.error.empty()) ++errors;
        }
        aborted = st.aborted;
    }
    if (line_index == 0) {
        slo_feedback_tick();
        return false;  // input exhausted before any request line
    }
    if (!aborted) {
        if (framed) out << '\n';
        out.flush();
        if (!out) {
            aborted = true;
            metrics_.get_counter("service.client_aborts").add(1);
        }
    }

    if (overflow > 0) admission_.note_batch_overflow(overflow);
    if (stats) {
        stats->requests += line_index;
        stats->rows += total_rows;
        stats->jobs += jobs;
        stats->errors += errors;
        stats->shed += shed + overflow;
        if (aborted) stats->client_aborts += 1;
    }
    metrics_.get_counter("service.requests").add(line_index);
    metrics_.get_counter("service.rows").add(total_rows);
    metrics_.get_counter("service.jobs").add(jobs);
    metrics_.get_counter("service.errors").add(errors);
    slo_feedback_tick();
    return !aborted && !stream_error;
}

batch_stats service::serve_stream(std::istream& in, std::ostream& out, bool framed) {
    batch_stats total;
    while (serve_batch(in, out, &total, framed)) {
    }
    return total;
}

void service::slo_feedback_tick() {
    if (opts_.slo_feedback.clauses.empty() || !admission_.enabled()) return;
    std::lock_guard lock(slo_mutex_);
    slo_monitor_.observe(metrics_.get_histogram("service.request_ns").snapshot());
    const std::vector<obs::log_histogram> windows = slo_monitor_.windows();
    const obs::slo_report report = obs::evaluate_slo_windows(
        opts_.slo_feedback, windows, metrics_.get_counter("service.errors").value(),
        metrics_.get_counter("service.rows").value());
    admission_.observe_burn_rate(report.max_burn_rate);
}

obs::metrics_snapshot service::stats_snapshot() const {
    obs::metrics_snapshot snap = metrics_.snapshot();
    const workload_cache_stats cs = cache_.stats();
    snap.set_counter("workload_cache.hits", cs.hits);
    snap.set_counter("workload_cache.misses", cs.misses);
    snap.set_counter("workload_cache.evictions", cs.evictions);
    snap.set_gauge("workload_cache.size", cache_.size());
    const outcome_cache_stats os = outcomes_.stats();
    snap.set_counter("outcome_cache.hits", os.hits);
    snap.set_counter("outcome_cache.misses", os.misses);
    snap.set_counter("outcome_cache.evictions", os.evictions);
    snap.set_gauge("outcome_cache.size", outcomes_.size());
    admission_.contribute_metrics(snap);
    pool_.contribute_metrics(snap);
    // Derived simulation throughput: simulated instructions per host second
    // of fan-out wall time (the sim_throughput bench's MIPS, as a service
    // gauge). Wall-time-derived, so — like steal counts — not part of the
    // deterministic counter set.
    if (const u64* instr = snap.counter_value("sim.instructions")) {
        if (const obs::log_histogram* exec = snap.histogram("service.execute_ns");
            exec != nullptr && exec->sum() > 0) {
            snap.set_gauge("sim.host_instr_per_sec",
                           static_cast<u64>(static_cast<double>(*instr) * 1e9 /
                                            static_cast<double>(exec->sum())));
        }
    }
    return snap;
}

}  // namespace meek::serve
