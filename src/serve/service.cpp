#include "serve/service.h"

#include <istream>
#include <ostream>

namespace meek::serve {

service::service(const service_options& opts)
    : cache_(opts.cache_capacity),
      outcomes_(opts.outcome_capacity),
      pool_(opts.threads) {}

std::vector<response_row> service::evaluate(const std::vector<std::string>& lines,
                                            batch_stats* stats) {
    // Phase 1: parse and resolve every line on the session thread; collect
    // the dispatchable specs in (request, repeat) order.
    struct slot {
        response_row row;            // id/error prefilled; outcome filled later
        std::size_t spec_index = 0;  // into `specs` when error is empty
    };
    std::vector<slot> slots;
    std::vector<sim::run_spec> specs;

    for (std::size_t i = 0; i < lines.size(); ++i) {
        parsed_request parsed = parse_request(strip_cr(lines[i]));
        if (!parsed.ok()) {
            slot s;
            s.row.request_index = i;
            s.row.error = parsed.error;
            slots.push_back(std::move(s));
            continue;
        }
        const run_request& req = parsed.request;
        for (u64 r = 0; r < req.repeats; ++r) {
            slot s;
            s.row.request_index = i;
            s.row.repeat = r;
            s.row.id = req.id;
            sim::run_spec spec;
            const std::string err = resolve_request(req, r, &spec);
            if (!err.empty()) {
                s.row.error = err;
                slots.push_back(std::move(s));
                break;  // a request that cannot resolve yields one error row
            }
            spec.workloads = &cache_;
            s.row.seed = spec.workload_seed;
            s.spec_index = specs.size();
            specs.push_back(std::move(spec));
            slots.push_back(std::move(s));
        }
    }

    // Phase 2: fan the jobs out — longest spec first, through the completed-
    // result cache so a repeated identical evaluation is free; results return
    // in spec order.
    const std::vector<sim::run_outcome> outcomes = pool_.map(
        specs, /*base_seed=*/0,
        [this](const sim::run_spec& spec, const sim::job_context&) {
            return outcomes_.outcome_for(spec);
        },
        [](const sim::run_spec& spec) { return sim::cost_hint(spec); });

    // Phase 3: merge outcomes back into their slots.
    std::vector<response_row> rows;
    rows.reserve(slots.size());
    for (slot& s : slots) {
        if (s.row.error.empty()) {
            s.row.outcome = outcomes[s.spec_index];
        }
        rows.push_back(std::move(s.row));
    }

    if (stats) {
        stats->requests += lines.size();
        stats->rows += rows.size();
        stats->jobs += specs.size();
        for (const response_row& row : rows) {
            if (!row.error.empty()) ++stats->errors;
        }
    }
    return rows;
}

bool service::serve_batch(std::istream& in, std::ostream& out, batch_stats* stats,
                          bool framed) {
    const std::vector<std::string> lines = read_batch_lines(in);
    if (lines.empty()) return false;

    for (const response_row& row : evaluate(lines, stats)) {
        out << to_json(row) << '\n';
    }
    if (framed) out << '\n';  // end-of-batch marker, mirroring request framing
    out.flush();
    return true;
}

batch_stats service::serve_stream(std::istream& in, std::ostream& out, bool framed) {
    batch_stats total;
    while (serve_batch(in, out, &total, framed)) {
    }
    return total;
}

}  // namespace meek::serve
