// The batched evaluation service: a long-lived session that owns one
// executor and one content-addressed workload cache, accepts batches of
// NDJSON run requests, fans the resolved jobs out across the pool, and
// streams response rows back in deterministic (request, repeat) order.
//
// Determinism contract: for a given batch text, the response byte stream is
// identical at any thread count and any cache capacity — scheduling affects
// wall-clock only. Requests that fail to parse or resolve produce error rows
// in their slot instead of aborting the batch.
//
// Batch framing on a stream: one request per line; a blank line (or EOF)
// ends the batch, and a trailing '\r' is stripped by the framing layer so
// CRLF clients frame identically (serve::read_batch_lines). serve_stream()
// loops batches until EOF, flushing after each, which is the stdin/stdout
// daemon mode of tools/meek_serve. In *framed* mode — the socket transport's
// wire format, and `meek_serve --framed` — each batch's rows are followed by
// one blank line, mirroring the request framing, so a client can detect
// end-of-batch without counting rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/outcome_cache.h"
#include "serve/protocol.h"
#include "serve/workload_cache.h"
#include "sim/executor.h"
#include "sim/job.h"

namespace meek::serve {

struct service_options {
    u32 threads = 0;                  // 0 => MEEK_THREADS / hardware_concurrency
    std::size_t cache_capacity = 64;  // workload cache entries; 0 disables caching
    std::size_t outcome_capacity = 256;  // completed-result cache; 0 disables
};

struct batch_stats {
    u64 requests = 0;  // lines attempted
    u64 rows = 0;      // response rows emitted (includes error rows)
    u64 errors = 0;    // error rows among them
    u64 jobs = 0;      // simulations actually dispatched
};

class service {
public:
    explicit service(const service_options& opts = {});

    // Evaluate one batch of request lines; rows come back ordered by
    // (request index, repeat).
    std::vector<response_row> evaluate(const std::vector<std::string>& lines,
                                       batch_stats* stats = nullptr);

    // Read one blank-line-terminated batch from `in`, evaluate it, and write
    // one NDJSON row per (request, repeat) to `out` (plus a blank terminator
    // line when `framed`). Returns false when `in` was exhausted before any
    // request line was read.
    bool serve_batch(std::istream& in, std::ostream& out, batch_stats* stats = nullptr,
                     bool framed = false);

    // Drain `in` batch by batch until EOF, flushing `out` after each batch;
    // returns the aggregate stats of the session.
    batch_stats serve_stream(std::istream& in, std::ostream& out, bool framed = false);

    const workload_cache& cache() const { return cache_; }
    const outcome_cache& outcomes() const { return outcomes_; }
    sim::executor& pool() { return pool_; }
    obs::metrics_registry& metrics() { return metrics_; }

    // The session's full observability picture: the registry's counters and
    // per-stage latency histograms (service.parse_ns / resolve_ns /
    // execute_ns / serialize_ns), overlaid with the workload/outcome cache
    // stats and the executor's pool counters + queue-wait/run histograms —
    // the existing stat structs re-plumbed into one sorted snapshot. This is
    // what `meek_serve --stats-json` exports and what a `{"stats":true}`
    // request line returns inline.
    obs::metrics_snapshot stats_snapshot() const;

private:
    // Declared before the executor: jobs drained by the pool's destructor
    // never touch the registry, but the registry must outlive evaluate()
    // callers' recording handles anyway — first is simplest.
    obs::metrics_registry metrics_;
    workload_cache cache_;
    outcome_cache outcomes_;
    sim::executor pool_;
    // Trace minting sequence: batch n, line i => mint_trace_id(n, i), so
    // trace ids are a pure function of the session's input, never of
    // scheduling. Only advanced while tracing is enabled.
    u64 batch_seq_ = 0;
};

}  // namespace meek::serve
