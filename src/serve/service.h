// The batched evaluation service: a long-lived session that owns one
// executor and one content-addressed workload cache, accepts batches of
// NDJSON run requests, fans the resolved jobs out across the pool, and
// streams response rows back in deterministic (request, repeat) order.
//
// Determinism contract: for a given batch text, the response byte stream is
// identical at any thread count and any cache capacity — scheduling affects
// wall-clock only. Requests that fail to parse or resolve produce error rows
// in their slot instead of aborting the batch.
//
// Batch framing on a stream: one request per line; a blank line (or EOF)
// ends the batch, and a trailing '\r' is stripped by the framing layer so
// CRLF clients frame identically (serve::read_batch). serve_stream()
// loops batches until EOF, flushing after each, which is the stdin/stdout
// daemon mode of tools/meek_serve. In *framed* mode — the socket transport's
// wire format, and `meek_serve --framed` — each batch's rows are followed by
// one blank line, mirroring the request framing, so a client can detect
// end-of-batch without counting rows.
//
// Streaming mode (service_options.streaming): serve_batch reads the batch
// line by line, dispatches each line's jobs through the executor's
// completion hook the moment it parses, and emits rows *while later lines
// are still being read and executed*. Ordering is a prefix reorder window —
// row k is written once rows 0..k-1 are out and row k is complete — so the
// byte stream is identical to the buffered path at any thread count; only
// first-row latency changes. The flush cadence is per drain of completed
// rows instead of per batch.
//
// Overload behavior: when admission control is configured, each valid
// request line is offered to the admission_controller at parse time; a shed
// line settles immediately with one in-slot
// {"error":"overloaded","retry_after_ms":N} row (never dropped, regardless
// of its repeats). Lines past the per-batch buffering caps (batch_limits)
// shed the same way. An SLO spec in `slo_feedback` closes the loop: the
// request-latency burn rate tightens admission while violated and loosens
// it on recovery.
#pragma once

#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "serve/admission.h"
#include "serve/outcome_cache.h"
#include "serve/protocol.h"
#include "serve/workload_cache.h"
#include "sim/executor.h"
#include "sim/job.h"

namespace meek::serve {

struct service_options {
    u32 threads = 0;                  // 0 => MEEK_THREADS / hardware_concurrency
    std::size_t cache_capacity = 64;  // workload cache entries; 0 disables caching
    std::size_t outcome_capacity = 256;  // completed-result cache; 0 disables
    batch_limits limits;              // per-batch line/byte buffering caps
    admission_options admission;      // line-level admission control (default off)
    bool streaming = false;           // pipelined row emission in serve_batch
    // Nonempty clauses => after each batch the service.request_ns burn rate
    // against this spec feeds admission (tighten on violation, recover on
    // health). Independent of any tool-level --slo exit-code check.
    obs::slo_spec slo_feedback;
};

struct batch_stats {
    u64 requests = 0;  // lines attempted
    u64 rows = 0;      // response rows emitted (includes error rows)
    u64 errors = 0;    // error rows among them
    u64 jobs = 0;      // simulations actually dispatched
    u64 shed = 0;          // "overloaded" rows among the errors
    u64 stream_errors = 0;  // batches whose input stream died (in.bad())
    u64 client_aborts = 0;  // batches whose output stream died mid-response
};

class service {
public:
    explicit service(const service_options& opts = {});

    // Evaluate one batch of request lines; rows come back ordered by
    // (request index, repeat).
    std::vector<response_row> evaluate(const std::vector<std::string>& lines,
                                       batch_stats* stats = nullptr);

    // Read one blank-line-terminated batch from `in`, evaluate it, and write
    // one NDJSON row per (request, repeat) to `out` (plus a blank terminator
    // line when `framed`). Returns false when the connection is finished:
    // `in` exhausted before any request line, the input stream died
    // (in.bad(), counted as a stream_error), or `out` failed mid-response (a
    // client hang-up, counted as a client_abort) — a false return tells
    // serve_stream to stop looping instead of burning batches nobody reads.
    bool serve_batch(std::istream& in, std::ostream& out, batch_stats* stats = nullptr,
                     bool framed = false);

    // Drain `in` batch by batch until EOF (or the connection dies), flushing
    // `out` after each batch; returns the aggregate stats of the session.
    batch_stats serve_stream(std::istream& in, std::ostream& out, bool framed = false);

    const workload_cache& cache() const { return cache_; }
    const outcome_cache& outcomes() const { return outcomes_; }
    sim::executor& pool() { return pool_; }
    obs::metrics_registry& metrics() { return metrics_; }
    const admission_controller& admission() const { return admission_; }
    admission_controller& admission() { return admission_; }

    // The session's full observability picture: the registry's counters and
    // per-stage latency histograms (service.parse_ns / resolve_ns /
    // execute_ns / serialize_ns), overlaid with the workload/outcome cache
    // stats, the admission controller's counters/gauges, and the executor's
    // pool counters + queue-wait/run histograms — the existing stat structs
    // re-plumbed into one sorted snapshot. This is what `meek_serve
    // --stats-json` exports and what a `{"stats":true}` request line returns
    // inline.
    obs::metrics_snapshot stats_snapshot() const;

private:
    // The streaming serve_batch: line-at-a-time read/parse/dispatch with a
    // prefix-ordered completion emitter.
    bool serve_batch_streaming(std::istream& in, std::ostream& out,
                               batch_stats* stats, bool framed);

    // Feed the latest request-latency window's burn rate into admission.
    void slo_feedback_tick();

    service_options opts_;
    // Declared before the executor: jobs drained by the pool's destructor
    // never touch the registry, but the registry must outlive evaluate()
    // callers' recording handles anyway — first is simplest.
    obs::metrics_registry metrics_;
    workload_cache cache_;
    outcome_cache outcomes_;
    admission_controller admission_;
    // slo_window_monitor is single-threaded by contract; serve_batch may run
    // concurrently on accept-pool threads, so ticks serialize here.
    std::mutex slo_mutex_;
    obs::slo_window_monitor slo_monitor_;
    sim::executor pool_;
    // Trace minting sequence: batch n, line i => mint_trace_id(n, i), so
    // trace ids are a pure function of the session's input, never of
    // scheduling. Only advanced while tracing is enabled.
    u64 batch_seq_ = 0;
};

}  // namespace meek::serve
