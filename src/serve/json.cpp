#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace meek::serve {

json_value json_value::make_bool(bool b) {
    json_value v;
    v.kind_ = json_kind::boolean;
    v.bool_ = b;
    return v;
}

json_value json_value::make_number(double d) {
    json_value v;
    v.kind_ = json_kind::number;
    v.num_ = d;
    return v;
}

json_value json_value::make_integer(i64 i) {
    json_value v;
    v.kind_ = json_kind::number;
    v.integer_ = true;
    v.negative_ = i < 0;
    v.uint_ = v.negative_ ? 0 - static_cast<u64>(i) : static_cast<u64>(i);
    v.num_ = static_cast<double>(i);
    return v;
}

json_value json_value::make_unsigned(u64 u) {
    json_value v;
    v.kind_ = json_kind::number;
    v.integer_ = true;
    v.uint_ = u;
    v.num_ = static_cast<double>(u);
    return v;
}

json_value json_value::make_string(std::string s) {
    json_value v;
    v.kind_ = json_kind::string;
    v.str_ = std::move(s);
    return v;
}

json_value json_value::make_array() {
    json_value v;
    v.kind_ = json_kind::array;
    return v;
}

json_value json_value::make_object() {
    json_value v;
    v.kind_ = json_kind::object;
    return v;
}

bool json_value::as_bool(bool fallback) const {
    return is_bool() ? bool_ : fallback;
}

double json_value::as_double(double fallback) const {
    if (!is_number()) return fallback;
    if (integer_) {
        const double mag = static_cast<double>(uint_);
        return negative_ ? -mag : mag;
    }
    return num_;
}

u64 json_value::as_u64(u64 fallback) const {
    if (!is_number()) return fallback;
    if (integer_) return negative_ ? fallback : uint_;
    if (num_ < 0.0 || num_ != std::floor(num_)) return fallback;
    return static_cast<u64>(num_);
}

const json_value* json_value::get(std::string_view key) const {
    for (const auto& [k, v] : members_) {
        if (k == key) return &v;
    }
    return nullptr;
}

void json_value::set(std::string key, json_value v) {
    kind_ = json_kind::object;
    members_.emplace_back(std::move(key), std::move(v));
}

namespace {

// Recursive-descent parser over a string_view with explicit position.
class parser {
public:
    parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

    std::optional<json_value> run() {
        skip_ws();
        std::optional<json_value> v = value(/*depth=*/0);
        if (!v) return std::nullopt;
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON value");
            return std::nullopt;
        }
        return v;
    }

private:
    static constexpr int k_max_depth = 64;

    void fail(const std::string& msg) {
        if (error_ && error_->empty()) {
            *error_ = msg + " at offset " + std::to_string(pos_);
        }
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    bool eat(char c) {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) == word) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    std::optional<json_value> value(int depth) {
        if (depth > k_max_depth) {
            fail("nesting too deep");
            return std::nullopt;
        }
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        const char c = text_[pos_];
        switch (c) {
            case '{': return object(depth);
            case '[': return array(depth);
            case '"': {
                std::optional<std::string> s = string();
                if (!s) return std::nullopt;
                return json_value::make_string(std::move(*s));
            }
            case 't':
                if (literal("true")) return json_value::make_bool(true);
                break;
            case 'f':
                if (literal("false")) return json_value::make_bool(false);
                break;
            case 'n':
                if (literal("null")) return json_value::make_null();
                break;
            default:
                if (c == '-' || (c >= '0' && c <= '9')) return number();
                break;
        }
        fail(std::string("unexpected character '") + c + "'");
        return std::nullopt;
    }

    std::optional<json_value> object(int depth) {
        eat('{');
        json_value obj = json_value::make_object();
        skip_ws();
        if (eat('}')) return obj;
        for (;;) {
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key string");
                return std::nullopt;
            }
            std::optional<std::string> key = string();
            if (!key) return std::nullopt;
            skip_ws();
            if (!eat(':')) {
                fail("expected ':' after object key");
                return std::nullopt;
            }
            skip_ws();
            std::optional<json_value> v = value(depth + 1);
            if (!v) return std::nullopt;
            obj.set(std::move(*key), std::move(*v));
            skip_ws();
            if (eat(',')) continue;
            if (eat('}')) return obj;
            fail("expected ',' or '}' in object");
            return std::nullopt;
        }
    }

    std::optional<json_value> array(int depth) {
        eat('[');
        json_value arr = json_value::make_array();
        skip_ws();
        if (eat(']')) return arr;
        for (;;) {
            skip_ws();
            std::optional<json_value> v = value(depth + 1);
            if (!v) return std::nullopt;
            arr.push_back(std::move(*v));
            skip_ws();
            if (eat(',')) continue;
            if (eat(']')) return arr;
            fail("expected ',' or ']' in array");
            return std::nullopt;
        }
    }

    std::optional<std::string> string() {
        eat('"');
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
                return std::nullopt;
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) break;
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    u32 code = 0;
                    for (int i = 0; i < 4; ++i) {
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
                            fail("bad \\u escape");
                            return std::nullopt;
                        }
                        const char h = text_[pos_++];
                        code = code * 16 +
                               static_cast<u32>(h <= '9'   ? h - '0'
                                                : h <= 'F' ? h - 'A' + 10
                                                           : h - 'a' + 10);
                    }
                    // UTF-8 encode the BMP code point (surrogate pairs are out
                    // of scope for this protocol; encode them as-is).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                }
                default:
                    fail("bad escape character");
                    return std::nullopt;
            }
        }
        fail("unterminated string");
        return std::nullopt;
    }

    std::optional<json_value> number() {
        const std::size_t start = pos_;
        const bool negative = eat('-');
        if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            fail("bad number");
            return std::nullopt;
        }
        bool integral = true;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("bad number: digit required after '.'");
                return std::nullopt;
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("bad number: digit required in exponent");
                return std::nullopt;
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        const std::string token(text_.substr(start, pos_ - start));
        if (integral) {
            errno = 0;
            const u64 mag = std::strtoull(token.c_str() + (negative ? 1 : 0), nullptr, 10);
            if (errno == 0) {
                if (!negative) return json_value::make_unsigned(mag);
                if (mag <= static_cast<u64>(INT64_MAX) + 1) {
                    return json_value::make_integer(-static_cast<i64>(mag - 1) - 1);
                }
            }
            // Out-of-range integer: fall through to the double view.
        }
        return json_value::make_number(std::strtod(token.c_str(), nullptr));
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string* error_;
};

}  // namespace

std::optional<json_value> json_parse(std::string_view text, std::string* error) {
    if (error) error->clear();
    return parser(text, error).run();
}

std::string json_dump(const json_value& v) {
    switch (v.kind()) {
        case json_kind::null:
            return "null";
        case json_kind::boolean:
            return v.as_bool() ? "true" : "false";
        case json_kind::number: {
            if (v.is_unsigned_integer()) return std::to_string(v.as_u64());
            if (v.is_integer()) {
                // Negative integer: print the exact stored magnitude — the
                // double view rounds beyond 2^53 and would drift the value.
                return "-" + std::to_string(v.integer_magnitude());
            }
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.17g", v.as_double());
            std::string text = buf;
            // An integral-valued double would re-parse as integer kind;
            // ".0" keeps the non-integer view across the round-trip.
            if (std::isfinite(v.as_double()) &&
                text.find_first_of(".eE") == std::string::npos) {
                text += ".0";
            }
            return text;
        }
        case json_kind::string:
            return "\"" + json_escape(v.as_string()) + "\"";
        case json_kind::array: {
            std::string out = "[";
            bool first = true;
            for (const json_value& item : v.items()) {
                if (!first) out += ",";
                first = false;
                out += json_dump(item);
            }
            return out + "]";
        }
        case json_kind::object: {
            std::string out = "{";
            bool first = true;
            for (const auto& [key, value] : v.members()) {
                if (!first) out += ",";
                first = false;
                out += "\"" + json_escape(key) + "\":" + json_dump(value);
            }
            return out + "}";
        }
    }
    return "null";
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

void json_object_writer::key_prefix(std::string_view key) {
    if (!first_) out_ += ",";
    first_ = false;
    out_ += "\"";
    out_ += json_escape(key);
    out_ += "\":";
}

void json_object_writer::field(std::string_view key, std::string_view value) {
    key_prefix(key);
    out_ += "\"";
    out_ += json_escape(value);
    out_ += "\"";
}

void json_object_writer::field(std::string_view key, const char* value) {
    field(key, std::string_view(value));
}

void json_object_writer::field(std::string_view key, u64 value) {
    key_prefix(key);
    out_ += std::to_string(value);
}

void json_object_writer::field(std::string_view key, i64 value) {
    key_prefix(key);
    out_ += std::to_string(value);
}

void json_object_writer::field(std::string_view key, bool value) {
    key_prefix(key);
    out_ += value ? "true" : "false";
}

void json_object_writer::field_fixed(std::string_view key, double value, int decimals) {
    key_prefix(key);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    out_ += buf;
}

void json_object_writer::field_raw(std::string_view key, std::string_view json_fragment) {
    key_prefix(key);
    out_ += json_fragment;
}

}  // namespace meek::serve
