// Admission control for the serve path: the component that decides, at
// line-parse time, whether a request is allowed to queue or is shed with an
// in-slot `{"error":"overloaded","retry_after_ms":N}` row.
//
// Three pressure signals, each optional (0 = unlimited):
//   * in-flight jobs   — simulations submitted to the executor and not yet
//                        completed (the streaming path's saturation signal);
//   * queued lines     — request lines admitted and not yet retired
//                        (buffered ahead of evaluation);
//   * queued bytes     — the same backlog, in request bytes;
// plus an optional token-bucket line rate (lines/second with a burst cap) for
// front-ends that want a hard ceiling on arrival rate regardless of backlog.
//
// SLO feedback loop: `observe_burn_rate` feeds the PR-8 slo monitor's worst
// window burn rate (observed/threshold) back into admission. A burning SLO
// (rate > 1) tightens every limit by `tighten_factor`; a healthy window
// loosens them by `recover_factor` back toward 1.0. The scale floor keeps a
// melted-down service from shedding literally everything — some probes must
// get through for recovery to be observable.
//
// Decisions are load-dependent by nature, but with limits disabled (the
// default-constructed controller) every line is admitted at zero cost, so
// golden byte-identity contracts are untouched.
//
// Thread-safe: one controller is shared by every connection of a service
// (that is the point — admission guards the *process*, not one stream).
#pragma once

#include <mutex>
#include <string>

#include "common/types.h"
#include "obs/metrics.h"

namespace meek::serve {

struct admission_options {
    bool enabled = false;
    u64 max_inflight_jobs = 0;  // executor jobs submitted, not completed
    u64 max_queue_lines = 0;    // admitted lines not yet retired
    u64 max_queue_bytes = 0;    // admitted bytes not yet retired
    double line_rate = 0.0;     // token bucket: lines/second (0 = off)
    u64 line_burst = 64;        // token bucket capacity
    u64 retry_after_ms = 100;   // base resubmit hint in shed rows

    // SLO feedback shape (see observe_burn_rate).
    double tighten_factor = 0.5;
    double recover_factor = 1.25;
    double min_scale = 0.125;
};

struct admission_stats {
    u64 admitted = 0;
    u64 shed = 0;               // every shed line, whatever the cause
    u64 shed_inflight = 0;      // by cause, summing (with batch_limit) to shed
    u64 shed_queue_lines = 0;
    u64 shed_queue_bytes = 0;
    u64 shed_line_rate = 0;
    u64 shed_batch_limit = 0;   // read_batch overflow rows (noted, not decided)
    u64 slo_tightenings = 0;
    u64 slo_recoveries = 0;
};

class admission_controller {
public:
    admission_controller() = default;
    explicit admission_controller(const admission_options& opts) : opts_(opts) {}

    bool enabled() const { return opts_.enabled; }
    const admission_options& options() const { return opts_; }

    struct decision {
        bool admit = true;
        u64 retry_after_ms = 0;     // nonzero only when shed
        const char* reason = nullptr;  // "inflight" | "queue_lines" | ...
    };

    // Consulted once per parsed request line. `line_bytes` is the wire size
    // of the line, `estimated_jobs` its fan-out (repeats). `now_ns` feeds the
    // token bucket; 0 means "read the steady clock" — tests pass explicit
    // times so rate decisions are deterministic. An admitted line must later
    // be retired (retire_line) to release its queue accounting.
    decision admit_line(u64 line_bytes, u64 estimated_jobs, u64 now_ns = 0);

    // Queue/backlog accounting: a line admitted by admit_line is retired once
    // its rows are settled (emitted or merged).
    void retire_line(u64 line_bytes);

    // In-flight job accounting, bumped by the executor submit/completion
    // hooks of whoever owns this controller.
    void jobs_started(u64 n);
    void jobs_finished(u64 n);

    // Batch-limit overflow rows are shed rows too — they just were decided by
    // read_batch's caps instead of this controller. Keep one ledger.
    void note_batch_overflow(u64 lines);

    // Feed the slo monitor's worst-window burn rate: > 1 tightens the
    // effective limits (each limit scales by `scale()`), <= 1 recovers
    // toward full capacity. No-op while admission is disabled.
    void observe_burn_rate(double burn_rate);

    u64 inflight_jobs() const;
    u64 queued_lines() const;
    u64 queued_bytes() const;
    double scale() const;
    admission_stats stats() const;

    // admission.* counters and gauges for the metrics snapshot.
    void contribute_metrics(obs::metrics_snapshot& snap) const;

    // The "admission" section of meek.stats.v1: configured limits, live
    // scale/backlog, and the shed ledger, as one JSON object fragment.
    std::string to_json() const;

private:
    u64 effective(u64 limit) const;  // limit scaled by scale_, floored at 1

    admission_options opts_;
    mutable std::mutex mutex_;
    u64 inflight_jobs_ = 0;
    u64 queued_lines_ = 0;
    u64 queued_bytes_ = 0;
    double scale_ = 1.0;
    double tokens_ = -1.0;  // token bucket fill; <0 = not yet initialized
    u64 last_refill_ns_ = 0;
    admission_stats stats_;
};

}  // namespace meek::serve
