// Content-addressed result cache: the second caching layer of the serving
// stack, sitting above the workload cache.
//
// The workload cache dedups *generation*; this cache dedups *simulation*.
// Completed `sim::run_outcome`s are keyed on `run_spec_fingerprint` — the
// system kind, the effective soc_config, the workload's content fingerprint,
// the dynamic length and the seed — so a repeated identical evaluation
// (a re-sent serve request, a design-space grid point that coincides with a
// registry scenario, a resumed search) returns the reduced result without
// re-simulating. Point *names* are excluded from the key and patched back in
// from the requesting spec, so two names wrapping the same experiment share
// one cache entry yet each sees its own name in the outcome.
//
// Concurrency mirrors serve::workload_cache: the first requester of a key
// simulates while holding only a per-entry future; concurrent requesters of
// the same key join that future (one simulation, counted as hits), requesters
// of different keys simulate in parallel. LRU-bounded; capacity 0 disables
// caching (every call simulates privately).
#pragma once

#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sim/job.h"

namespace meek::serve {

struct outcome_cache_stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 evictions = 0;

    u64 lookups() const { return hits + misses; }
    double hit_rate() const {
        const u64 total = lookups();
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

class outcome_cache {
public:
    explicit outcome_cache(std::size_t capacity = 256);

    // The reduced outcome for `spec`, simulating on first request. The
    // returned copy carries `spec`'s scenario/workload names regardless of
    // which aliasing spec populated the entry. Propagates a simulation
    // exception to every waiter of that key and forgets the entry so a later
    // request can retry. Safe to call from any executor worker.
    sim::run_outcome outcome_for(const sim::run_spec& spec);

    outcome_cache_stats stats() const;
    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    void clear();

private:
    using future_t = std::shared_future<std::shared_ptr<const sim::run_outcome>>;
    struct entry {
        u64 key = 0;
        u64 id = 0;  // insertion tag: lets a failed producer erase only its own entry
        future_t ready;
    };

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::list<entry> lru_;  // front = most recently used
    std::unordered_map<u64, std::list<entry>::iterator> index_;
    outcome_cache_stats stats_;
    u64 next_id_ = 1;
};

}  // namespace meek::serve
