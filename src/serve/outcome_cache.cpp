#include "serve/outcome_cache.h"

#include <optional>
#include <utility>

namespace meek::serve {
namespace {

// The cached entry holds the name-free experiment result; the requesting
// spec's names are stamped on the copy handed back.
sim::run_outcome with_names(const sim::run_outcome& cached, const sim::run_spec& spec) {
    sim::run_outcome out = cached;
    out.scenario = spec.sc.name;
    out.workload = spec.workload.name;
    return out;
}

}  // namespace

outcome_cache::outcome_cache(std::size_t capacity) : capacity_(capacity) {}

sim::run_outcome outcome_cache::outcome_for(const sim::run_spec& spec) {
    if (capacity_ == 0) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.misses;
        }
        return sim::execute(spec);
    }

    const u64 key = sim::run_spec_fingerprint(spec);
    std::optional<std::promise<std::shared_ptr<const sim::run_outcome>>> my_promise;
    u64 my_id = 0;
    future_t fut;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = index_.find(key);
        if (it != index_.end()) {
            ++stats_.hits;
            // Joining an in-flight simulation counts as a hit — the job still
            // runs only once.
            lru_.splice(lru_.begin(), lru_, it->second);
            fut = it->second->ready;
        } else {
            ++stats_.misses;
            my_promise.emplace();
            my_id = next_id_++;
            fut = my_promise->get_future().share();
            lru_.push_front(entry{key, my_id, fut});
            index_[key] = lru_.begin();
            while (lru_.size() > capacity_) {
                index_.erase(lru_.back().key);
                lru_.pop_back();
                ++stats_.evictions;
            }
        }
    }

    if (my_promise) {
        // We inserted the entry: simulate outside the lock so distinct keys
        // run in parallel, then publish to every waiter.
        try {
            my_promise->set_value(
                std::make_shared<const sim::run_outcome>(sim::execute(spec)));
        } catch (...) {
            my_promise->set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = index_.find(key);
            if (it != index_.end() && it->second->id == my_id) {
                lru_.erase(it->second);
                index_.erase(it);
            }
        }
    }
    return with_names(*fut.get(), spec);
}

outcome_cache_stats outcome_cache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t outcome_cache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

void outcome_cache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
}

}  // namespace meek::serve
