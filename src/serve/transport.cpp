#include "serve/transport.h"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <condition_variable>
#include <deque>
#include <ios>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/service.h"

namespace meek::serve {
namespace {

// A dead peer must surface as a failed write (EPIPE -> stream error state),
// not a process-killing SIGPIPE. Installed once, before the first fd is
// wrapped in a stream.
void ignore_sigpipe() {
    static std::once_flag once;
    std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

void set_error(std::string* error, const std::string& what) {
    if (error) *error = what + ": " + std::strerror(errno);
}

bool parse_port(std::string_view text, u16* port) {
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size() || value > 65535) {
        return false;
    }
    *port = static_cast<u16>(value);
    return true;
}

}  // namespace

// ------------------------------------------------------------- addresses ---

std::string endpoint_address::describe() const {
    if (kind == endpoint_kind::unix_socket) return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

std::optional<endpoint_address> parse_endpoint(std::string_view spec,
                                               std::string* error) {
    endpoint_address addr;
    if (spec.rfind("unix:", 0) == 0) {
        addr.kind = endpoint_kind::unix_socket;
        addr.path = std::string(spec.substr(5));
        if (addr.path.empty()) {
            if (error) *error = "unix endpoint wants unix:PATH";
            return std::nullopt;
        }
        return addr;
    }
    if (spec.rfind("tcp:", 0) == 0) spec.remove_prefix(4);
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string_view::npos || !parse_port(spec.substr(colon + 1), &addr.port)) {
        if (error) *error = "endpoint wants tcp:HOST:PORT, HOST:PORT or unix:PATH";
        return std::nullopt;
    }
    addr.kind = endpoint_kind::tcp;
    addr.host = std::string(spec.substr(0, colon));
    if (addr.host.empty()) addr.host = "127.0.0.1";
    return addr;
}

// -------------------------------------------------------------- fd stream ---

// Fixed-size buffered streambuf over the fd pair. Reads and writes retry on
// EINTR; any other failure puts the stream in an error/EOF state.
class fd_stream::buf : public std::streambuf {
public:
    buf(int read_fd, int write_fd, bool write_is_socket)
        : read_fd_(read_fd), write_fd_(write_fd), write_is_socket_(write_is_socket) {
        setg(rbuf_, rbuf_, rbuf_);
        setp(wbuf_, wbuf_ + sizeof wbuf_);
    }

    ~buf() override {
        sync();
        close_write();
        if (read_fd_ >= 0) ::close(read_fd_);
        read_fd_ = -1;
    }

    void close_write() {
        sync();
        if (write_fd_ < 0) return;
        if (write_is_socket_) {
            // The socket fd doubles as the read side; only shut the write
            // half down so responses can still be drained.
            ::shutdown(write_fd_, SHUT_WR);
            if (write_fd_ != read_fd_) ::close(write_fd_);
        } else {
            ::close(write_fd_);
        }
        write_fd_ = -1;
    }

protected:
    int underflow() override {
        if (read_fd_ < 0) return traits_type::eof();
        ssize_t n;
        do {
            n = ::read(read_fd_, rbuf_, sizeof rbuf_);
        } while (n < 0 && errno == EINTR);
        if (n == 0) return traits_type::eof();  // clean end-of-stream
        if (n < 0) {
            // A real I/O error (reset connection, bad fd) must not read as a
            // polite hang-up: throwing here makes istream extraction set
            // badbit (the default exception mask swallows the throw), so
            // read_batch's stream_error can tell the two apart.
            throw std::ios_base::failure("fd_stream read error");
        }
        setg(rbuf_, rbuf_, rbuf_ + n);
        return traits_type::to_int_type(rbuf_[0]);
    }

    int overflow(int ch) override {
        if (!flush_pending()) return traits_type::eof();
        if (!traits_type::eq_int_type(ch, traits_type::eof())) {
            *pptr() = traits_type::to_char_type(ch);
            pbump(1);
        }
        return 0;
    }

    int sync() override { return flush_pending() ? 0 : -1; }

private:
    bool flush_pending() {
        const char* data = pbase();
        std::size_t left = static_cast<std::size_t>(pptr() - pbase());
        while (left > 0) {
            if (write_fd_ < 0) return false;
            ssize_t n;
            do {
                n = ::write(write_fd_, data, left);
            } while (n < 0 && errno == EINTR);
            if (n <= 0) return false;
            data += n;
            left -= static_cast<std::size_t>(n);
        }
        setp(wbuf_, wbuf_ + sizeof wbuf_);
        return true;
    }

    int read_fd_;
    int write_fd_;
    bool write_is_socket_;
    char rbuf_[16384];
    char wbuf_[16384];
};

fd_stream::fd_stream(int read_fd, int write_fd, bool write_is_socket)
    : std::iostream(nullptr),
      buf_(std::make_unique<buf>(read_fd, write_fd, write_is_socket)) {
    ignore_sigpipe();
    rdbuf(buf_.get());
}

fd_stream::~fd_stream() = default;

void fd_stream::close_write() {
    flush();
    buf_->close_write();
}

// --------------------------------------------------------------- sockets ---

namespace {

// Build the sockaddr for `addr`; returns the socket family or -1.
int fill_sockaddr(const endpoint_address& addr, sockaddr_storage* storage,
                  socklen_t* len, std::string* error) {
    std::memset(storage, 0, sizeof *storage);
    if (addr.kind == endpoint_kind::unix_socket) {
        auto* sun = reinterpret_cast<sockaddr_un*>(storage);
        if (addr.path.size() >= sizeof sun->sun_path) {
            if (error) *error = "unix socket path too long: " + addr.path;
            return -1;
        }
        sun->sun_family = AF_UNIX;
        std::memcpy(sun->sun_path, addr.path.c_str(), addr.path.size() + 1);
        *len = sizeof(sockaddr_un);
        return AF_UNIX;
    }
    auto* sin = reinterpret_cast<sockaddr_in*>(storage);
    sin->sin_family = AF_INET;
    sin->sin_port = htons(addr.port);
    if (::inet_pton(AF_INET, addr.host.c_str(), &sin->sin_addr) != 1) {
        // Not a numeric IPv4 literal: resolve the hostname ("tcp:HOST:PORT"
        // is documented to take names, not just addresses).
        addrinfo hints{};
        hints.ai_family = AF_INET;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo* results = nullptr;
        const int rc = ::getaddrinfo(addr.host.c_str(), nullptr, &hints, &results);
        if (rc != 0 || results == nullptr) {
            if (error) {
                *error = "cannot resolve host '" + addr.host +
                         "': " + ::gai_strerror(rc);
            }
            if (results) ::freeaddrinfo(results);
            return -1;
        }
        sin->sin_addr = reinterpret_cast<sockaddr_in*>(results->ai_addr)->sin_addr;
        ::freeaddrinfo(results);
    }
    *len = sizeof(sockaddr_in);
    return AF_INET;
}

}  // namespace

listener::~listener() {
    close();
    ::close(fd_);
    if (addr_.kind == endpoint_kind::unix_socket) ::unlink(addr_.path.c_str());
}

namespace {

// Reclaiming a unix socket path must not steal a live daemon's endpoint or
// delete an unrelated file: only a path that is a socket nobody answers on
// (a dead daemon's leftover) may be unlinked.
bool reclaim_stale_unix_path(const endpoint_address& addr, std::string* error) {
    struct stat st;
    if (::lstat(addr.path.c_str(), &st) != 0) return true;  // nothing there
    if (!S_ISSOCK(st.st_mode)) {
        if (error) {
            *error = "path '" + addr.path + "' exists and is not a socket";
        }
        return false;
    }
    if (std::unique_ptr<fd_stream> live = connect_endpoint(addr)) {
        if (error) {
            *error = "address in use: a daemon is live on " + addr.describe();
        }
        return false;
    }
    ::unlink(addr.path.c_str());
    return true;
}

}  // namespace

std::unique_ptr<listener> listener::open(const endpoint_address& addr,
                                         std::string* error) {
    ignore_sigpipe();
    sockaddr_storage storage;
    socklen_t len = 0;
    const int family = fill_sockaddr(addr, &storage, &len, error);
    if (family < 0) return nullptr;

    if (family == AF_UNIX && !reclaim_stale_unix_path(addr, error)) return nullptr;

    const int fd = ::socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        set_error(error, "socket");
        return nullptr;
    }
    if (family == AF_INET) {
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&storage), len) != 0 ||
        ::listen(fd, 16) != 0) {
        set_error(error, "bind/listen on " + addr.describe());
        ::close(fd);
        return nullptr;
    }

    endpoint_address bound = addr;
    if (family == AF_INET && addr.port == 0) {
        sockaddr_in sin;
        socklen_t sin_len = sizeof sin;
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &sin_len) == 0) {
            bound.port = ntohs(sin.sin_port);
        }
    }
    return std::unique_ptr<listener>(new listener(fd, std::move(bound)));
}

std::unique_ptr<fd_stream> listener::accept() {
    for (;;) {
        if (closing_.load()) return nullptr;
        const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (client >= 0) {
            if (closing_.load()) {  // close() raced the handshake
                ::close(client);
                return nullptr;
            }
            return std::make_unique<fd_stream>(client, client, /*write_is_socket=*/true);
        }
        if (errno == EINTR) continue;
        // Transient failures must not kill a long-running daemon: a client
        // aborting mid-handshake or a momentary fd-limit spike leaves the
        // listening socket perfectly healthy.
        if (errno == ECONNABORTED || errno == EPROTO) continue;
        if (errno == EMFILE || errno == ENFILE) {
            ::usleep(10'000);  // let some fds drain before retrying
            continue;
        }
        return nullptr;  // shut down under us, or a fatal accept error
    }
}

void listener::close() {
    if (closing_.exchange(true)) return;
    // shutdown() wakes a blocked accept(); the fd stays open until the
    // destructor so a concurrent accept() can never touch a recycled
    // descriptor.
    ::shutdown(fd_, SHUT_RDWR);
}

std::unique_ptr<fd_stream> connect_endpoint(const endpoint_address& addr,
                                            std::string* error) {
    ignore_sigpipe();
    sockaddr_storage storage;
    socklen_t len = 0;
    const int family = fill_sockaddr(addr, &storage, &len, error);
    if (family < 0) return nullptr;
    const int fd = ::socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        set_error(error, "socket");
        return nullptr;
    }
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&storage), len);
    if (rc != 0 && errno == EINTR) {
        // POSIX: an interrupted connect proceeds asynchronously; retrying it
        // would fail with EALREADY. Wait for writability, then read the
        // handshake's outcome from SO_ERROR.
        pollfd pfd{fd, POLLOUT, 0};
        while (::poll(&pfd, 1, -1) < 0 && errno == EINTR) {
        }
        int so_error = 0;
        socklen_t so_len = sizeof so_error;
        rc = ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len);
        if (rc == 0 && so_error != 0) {
            errno = so_error;
            rc = -1;
        }
    }
    if (rc != 0) {
        set_error(error, "connect to " + addr.describe());
        ::close(fd);
        return nullptr;
    }
    return std::make_unique<fd_stream>(fd, fd, /*write_is_socket=*/true);
}

// --------------------------------------------------------- child process ---

child_process::~child_process() {
    if (pid_ < 0 || reaped_) return;
    // Closing the pipes is the polite shutdown signal (EOF on the child's
    // stdin); reap without blocking forever only if the child already exited,
    // else force it down — a destructor must not hang the parent.
    io_.reset();
    int status = 0;
    if (::waitpid(pid_, &status, WNOHANG) == 0) {
        ::kill(pid_, SIGKILL);
        ::waitpid(pid_, &status, 0);
    }
    reaped_ = true;
}

std::unique_ptr<child_process> child_process::spawn(
    const std::vector<std::string>& argv, const spawn_options& opts,
    std::string* error) {
    ignore_sigpipe();
    if (argv.empty()) {
        if (error) *error = "spawn wants a non-empty argv";
        return nullptr;
    }
    // O_CLOEXEC: a worker spawned later must not inherit earlier workers'
    // pipe ends, or closing one child's stdin would no longer deliver EOF
    // while its siblings live. dup2 clears the flag on the child's own stdio.
    int to_child[2] = {-1, -1};    // parent writes -> child stdin
    int from_child[2] = {-1, -1};  // child stdout -> parent reads
    if (::pipe2(to_child, O_CLOEXEC) != 0 || ::pipe2(from_child, O_CLOEXEC) != 0) {
        set_error(error, "pipe");
        if (to_child[0] >= 0) ::close(to_child[0]);
        if (to_child[1] >= 0) ::close(to_child[1]);
        return nullptr;
    }

    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);

    const int pid = ::fork();
    if (pid < 0) {
        set_error(error, "fork");
        for (const int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
            ::close(fd);
        }
        return nullptr;
    }
    if (pid == 0) {
        // Child: wire the pipes, drop the parent ends, exec. Only
        // async-signal-safe calls between fork and exec. A pipe fd can land
        // on 0/1 when the parent runs with stdio closed (a daemonized
        // front-end); dup2 on equal fds would keep O_CLOEXEC set, so clear
        // it in place instead.
        const auto wire = [](int fd, int target) {
            if (fd == target) {
                ::fcntl(fd, F_SETFD, 0);
            } else {
                ::dup2(fd, target);
            }
        };
        wire(to_child[0], STDIN_FILENO);
        if (opts.stdout_to_null) {
            const int null_fd = ::open("/dev/null", O_WRONLY);
            if (null_fd >= 0) wire(null_fd, STDOUT_FILENO);
            if (null_fd >= 0 && null_fd != STDOUT_FILENO) ::close(null_fd);
        } else {
            wire(from_child[1], STDOUT_FILENO);
        }
        for (const int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
            if (fd != STDIN_FILENO && fd != STDOUT_FILENO) ::close(fd);
        }
        ::execvp(cargv[0], cargv.data());
        // exec failed: report on the inherited stderr and die without running
        // any parent-owned atexit handlers.
        const char* msg = "meek transport: exec failed: ";
        ssize_t rc = ::write(STDERR_FILENO, msg, std::strlen(msg));
        rc = ::write(STDERR_FILENO, cargv[0], std::strlen(cargv[0]));
        rc = ::write(STDERR_FILENO, "\n", 1);
        (void)rc;
        ::_exit(127);
    }

    ::close(to_child[0]);
    ::close(from_child[1]);
    auto io = std::make_unique<fd_stream>(from_child[0], to_child[1],
                                          /*write_is_socket=*/false);
    return std::unique_ptr<child_process>(new child_process(pid, std::move(io)));
}

int child_process::wait() {
    if (reaped_) return status_;
    int status = 0;
    int rc;
    do {
        rc = ::waitpid(pid_, &status, 0);
    } while (rc < 0 && errno == EINTR);
    reaped_ = true;
    if (rc < 0) {
        status_ = -1;
    } else if (WIFEXITED(status)) {
        status_ = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        status_ = -WTERMSIG(status);
    } else {
        status_ = -1;
    }
    return status_;
}

bool child_process::poll_exited() {
    if (reaped_) return true;
    int status = 0;
    const int rc = ::waitpid(pid_, &status, WNOHANG);
    if (rc == 0) return false;  // still running
    reaped_ = true;
    if (rc < 0) {
        status_ = -1;
    } else if (WIFEXITED(status)) {
        status_ = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        status_ = -WTERMSIG(status);
    } else {
        status_ = -1;
    }
    return true;
}

void child_process::kill() {
    if (pid_ >= 0 && !reaped_) ::kill(pid_, SIGKILL);
}

// ------------------------------------------------------------ accept loop ---

serve_connections_stats serve_connections(service& svc, listener& lis,
                                          const serve_connections_options& opts) {
    // Shared accept-pool state. `reserved` is the number of --max-connections
    // budget slots handed out (refunded for probes); `counted` the
    // connections that actually carried requests.
    struct accept_state {
        std::mutex mutex;
        std::condition_variable work;  // handlers: a connection is queued / shutdown
        std::condition_variable slot;  // acceptor: a handler freed a slot
        std::deque<std::unique_ptr<fd_stream>> queue;
        bool done = false;
        u64 reserved = 0;
        u64 counted = 0;
        std::size_t active = 0;  // connections a handler is currently serving
        serve_connections_stats total;
    } st;
    const std::size_t pool = std::max<u32>(1, opts.accept_threads);
    const u64 max = opts.max_connections;

    std::vector<std::thread> handlers;
    handlers.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) {
        handlers.emplace_back([&svc, &st, &opts, max] {
            for (;;) {
                std::unique_ptr<fd_stream> client;
                {
                    std::unique_lock<std::mutex> lock(st.mutex);
                    st.work.wait(lock, [&st] { return st.done || !st.queue.empty(); });
                    if (st.queue.empty()) return;  // done and drained
                    client = std::move(st.queue.front());
                    st.queue.pop_front();
                    ++st.active;
                }
                const batch_stats s = svc.serve_stream(*client, *client, opts.framed);
                client.reset();  // flush + close before releasing the slot
                {
                    std::lock_guard<std::mutex> lock(st.mutex);
                    --st.active;
                    if (s.requests == 0) {
                        // A probe: refund its budget slot so a health check
                        // can never shut a live daemon down.
                        if (max != 0) --st.reserved;
                    } else {
                        ++st.counted;
                        st.total.connections = st.counted;
                        st.total.requests += s.requests;
                        st.total.rows += s.rows;
                        st.total.errors += s.errors;
                        st.total.jobs += s.jobs;
                    }
                }
                st.slot.notify_all();
            }
        });
    }

    for (;;) {
        {
            std::unique_lock<std::mutex> lock(st.mutex);
            st.slot.wait(lock, [&st, pool, max] {
                const bool slot_free = st.queue.size() + st.active < pool;
                const bool budget_open = max == 0 || st.reserved < max;
                const bool drained =
                    max != 0 && st.reserved >= max && st.active == 0 && st.queue.empty();
                return (slot_free && budget_open) || drained;
            });
            if (max != 0 && st.reserved >= max && st.active == 0 && st.queue.empty()) {
                break;  // budget spent and every connection settled
            }
        }
        std::unique_ptr<fd_stream> client = lis.accept();
        if (!client) break;  // closed from another thread, or fatal accept error
        {
            std::lock_guard<std::mutex> lock(st.mutex);
            if (max != 0) ++st.reserved;
            st.queue.push_back(std::move(client));
        }
        st.work.notify_one();
    }

    {
        std::lock_guard<std::mutex> lock(st.mutex);
        st.done = true;
    }
    st.work.notify_all();
    for (std::thread& t : handlers) t.join();
    return st.total;
}

}  // namespace meek::serve
