// MEEK SoC top level: one big OoO core + N little checker cores joined by
// the forwarding fabric, with the DEU observing commits and the segmentation
// controller implementing the RCP protocol of Figs. 1/2.
//
// Clocking: the big core runs in the 3.2 GHz domain; the fabric and little
// cores run in the 1.6 GHz domain (one low cycle per two big cycles).
//
// The slowdown MEEK induces on the big core appears exclusively as commit
// backpressure, split into the Fig. 9 taxonomy:
//   * collecting — the DEU's snapshot read-out occupies the PRF ports;
//   * forwarding — a DC-Buffer channel is full (fabric cannot drain fast
//     enough);
//   * checker    — an RCP is due but no little core / LSL is free, or the
//     reserved LSL is full mid-segment.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bigcore/ooo_core.h"
#include "common/clock.h"
#include "common/config.h"
#include "common/function_ref.h"
#include "deu/deu.h"
#include "fabric/fabric.h"
#include "littlecore/little_core.h"

namespace meek {

struct detection_event {
    check_error_kind kind = check_error_kind::none;
    u32 segment = 0;
    cycle_t detect_big_cycle = 0;
};

struct soc_stats {
    u64 segments_started = 0;
    u64 segments_verified = 0;
    u64 segments_failed = 0;
    u64 errors_detected = 0;

    // Backpressure buckets, in big-core cycles of commit stall.
    cycle_t stall_collecting = 0;
    cycle_t stall_forwarding = 0;
    cycle_t stall_checker = 0;

    cycle_t total_stall() const {
        return stall_collecting + stall_forwarding + stall_checker;
    }
};

struct meek_run_result {
    run_result big;            // big-core view (cycles include stalls)
    cycle_t drain_cycles = 0;  // extra big cycles to finish outstanding checks
    soc_stats soc;
    bool verified_ok = false;  // all segments passed (expected when no faults)
    // Non-empty when the run was aborted because the SoC could provably make
    // no further progress (e.g. a zero-capacity fabric that can never accept
    // a packet) or exhausted its stall budget. Replaces the former livelock.
    std::string error;
};

// Internal abort signal for stalled-forever configurations; meek_soc::run()
// converts it into meek_run_result::error.
struct soc_stall_error : std::runtime_error {
    using std::runtime_error::runtime_error;
};

class meek_soc : public commit_sink {
public:
    meek_soc(const soc_config& cfg);

    // Loads the application program onto the big core (and makes the text
    // visible to the little cores' fetch path).
    void load_program(const program& prog);

    // b.check: enable/disable the checking capacity.
    void set_checking(bool enabled);

    // Runs the application thread to completion (or to `limits`), then
    // drains all outstanding checker work.
    meek_run_result run(const run_limits& limits = {});

    // --- Instrumentation / fault-injection hooks ---
    // Called on every packet right before it enters the fabric; campaigns
    // corrupt packets here (the paper injects "errors in the forwarded data
    // from the F2 connected to the big core").
    // The owning std::function is cold storage; the per-packet call sites
    // dispatch through a function_ref (null fast path = one predictable
    // branch, no type-erasure layers when a campaign is attached).
    using packet_hook = std::function<void(fwd_packet&)>;
    void set_packet_hook(packet_hook hook) {
        packet_hook_ = std::move(hook);
        if (packet_hook_) {
            packet_ref_ = function_ref<void(fwd_packet&)>(packet_hook_);
        } else {
            packet_ref_.reset();
        }
    }

    using error_hook = std::function<void(const detection_event&)>;
    void set_error_hook(error_hook hook) {
        error_hook_ = std::move(hook);
        if (error_hook_) {
            error_ref_ = function_ref<void(const detection_event&)>(error_hook_);
        } else {
            error_ref_.reset();
        }
    }

    // Low-domain advance strategy. Event-driven (default) jumps over spans
    // where every checker is parked and the fabric has nothing due, with
    // bulk-accounted stall counters; exhaustive ticks every low cycle and is
    // the reference mode (env MEEK_LOW_ADVANCE=exhaustive selects it
    // globally). Both produce bit-identical results.
    void set_event_driven_low_advance(bool on) { event_driven_ = on; }
    bool event_driven_low_advance() const { return event_driven_; }

    // commit_sink interface (driven by the big core).
    cycle_t on_commit(const commit_record& rec, cycle_t proposed) override;
    void on_halt(cycle_t at) override;

    const soc_stats& stats() const { return stats_; }
    const ooo_core& big_core() const { return *big_; }
    ooo_core& big_core() { return *big_; }
    const little_core& little(u32 i) const { return *littles_[i]; }
    const fabric_model& fabric() const { return *fabric_; }
    const data_extraction_unit& deu() const { return deu_; }
    const std::vector<detection_event>& detections() const { return detections_; }
    const soc_config& config() const { return cfg_; }

    double big_cycle_to_ns(cycle_t c) const { return big_clock_.cycles_to_ns(c); }

private:
    struct pending_rcp {
        arch_snapshot snapshot;
        u32 boundary = 0;      // snapshot index (segment it starts)
        u64 start_seq = 0;     // first instruction of the new segment
    };

    // Advance the low-frequency domain until `big_cycle`; collects checker
    // results as they appear.
    void advance_low_to(cycle_t big_cycle);
    void tick_low_once();
    void collect_results();

    // Event-driven advance helpers. next_activity_lo() returns the earliest
    // low cycle >= low_ticks_done_ at which any state can change (k_never
    // when the SoC is quiescent and only external input could wake it);
    // skip_span() jumps to `to_lo` bulk-accounting the parked little cores;
    // step_low_for_wait() performs one event step inside a wait loop and
    // throws soc_stall_error on quiescence or an exhausted stall budget.
    static constexpr cycle_t k_never = ~cycle_t{0};
    cycle_t next_activity_lo() const;
    void skip_span(cycle_t to_lo);
    void step_low_for_wait(cycle_t& guard, const char* what);

    // Push helpers that spin the low domain until the fabric accepts,
    // charging the wait to `stall_bucket`. Returns the (possibly later)
    // big-cycle at which the push succeeded.
    cycle_t push_blocking(fwd_packet p, u32 path, cycle_t now_big,
                          cycle_t& stall_bucket);

    // Emit the snapshot word stream for boundary `b` to `dest`. `seq` tags
    // the words with the committing instruction for latency bookkeeping.
    cycle_t send_status(const arch_snapshot& snap, u32 boundary, dest_mask_t dest,
                        cycle_t now_big, u64 seq);

    int find_idle_core() const;
    void assign_segment(u32 core, u32 segment, u64 start_seq);
    cycle_t fire_rcp(const commit_record& rec, cycle_t now_big, bool final_rcp);

    soc_config cfg_;
    clock_domain big_clock_;
    clock_domain low_clock_;

    functional_memory memory_;
    std::unique_ptr<ooo_core> big_;
    std::vector<std::unique_ptr<little_core>> littles_;
    std::unique_ptr<fabric_model> fabric_;
    data_extraction_unit deu_;

    const program* prog_ = nullptr;
    bool checking_ = true;

    // Segmentation state.
    u32 current_segment_ = 0;
    int current_verifier_ = -1;
    u32 segment_instrs_ = 0;
    u32 segment_runtime_entries_ = 0;
    u64 segment_start_seq_ = 0;
    u64 committed_watermark_ = 0;  // shared with little cores (one-behind rule)
    std::optional<pending_rcp> pending_;
    cycle_t extract_busy_until_ = 0;
    cycle_t low_ticks_done_ = 0;  // number of low cycles already simulated

    u64 little_freq_mhz_ = 2000;  // achievable clock of the little cores
    cycle_t little_ticks_done_ = 0;

    packet_hook packet_hook_;
    error_hook error_hook_;
    function_ref<void(fwd_packet&)> packet_ref_;
    function_ref<void(const detection_event&)> error_ref_;
    std::vector<detection_event> detections_;
    soc_stats stats_;
    bool halted_seen_ = false;
    bool event_driven_ = true;
};

}  // namespace meek
