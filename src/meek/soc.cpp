#include "meek/soc.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace meek {
namespace {

constexpr cycle_t k_drain_tick_bound = 200'000'000;

dest_mask_t bit(int core) { return static_cast<dest_mask_t>(1u << core); }

}  // namespace

meek_soc::meek_soc(const soc_config& cfg)
    : cfg_(cfg),
      big_clock_(cfg.big.freq_mhz),
      low_clock_(cfg.fabric.freq_mhz),
      deu_(cfg.little.lsl_entries(), cfg.little.rcp_instruction_timeout,
           cfg.big.commit_width) {
    big_ = std::make_unique<ooo_core>(cfg.big, memory_);
    for (u32 i = 0; i < cfg.num_little_cores; ++i) {
        littles_.push_back(std::make_unique<little_core>(cfg.little, i, memory_));
        littles_.back()->set_watermark(&committed_watermark_);
    }
    fabric_ = std::make_unique<fabric_model>(cfg.fabric, cfg.big.commit_width,
                                             cfg.num_little_cores);
    // Raw context + function-pointer sink: the per-packet delivery path
    // compiles down to one indirect call straight into little_core::deliver.
    fabric_->set_deliver_ref({this, [](void* ctx, u32 core, const fwd_packet& p) {
                                  auto* soc = static_cast<meek_soc*>(ctx);
                                  return soc->littles_[core]->deliver(p);
                              }});
    if (const char* mode = std::getenv("MEEK_LOW_ADVANCE")) {
        if (std::string_view(mode) == "exhaustive") event_driven_ = false;
    }
    // Table III clocks the optimized Rockets at 2 GHz (the deeper FPU
    // pipeline and unrolled divider close timing); the fabric stays in the
    // 1.6 GHz domain of Fig. 2. An explicit freq_override_mhz (design-space
    // sweeps) takes precedence over the tuning's achievable clock.
    little_freq_mhz_ = cfg.little.effective_freq_mhz();
}

void meek_soc::load_program(const program& prog) {
    prog_ = &prog;
    big_->load_program(prog);
    for (auto& lc : littles_) lc->set_program(prog);
}

void meek_soc::set_checking(bool enabled) {
    checking_ = enabled;
    deu_.set_enabled(enabled);
}

int meek_soc::find_idle_core() const {
    for (u32 i = 0; i < littles_.size(); ++i) {
        if (littles_[i]->idle()) return static_cast<int>(i);
    }
    return -1;
}

void meek_soc::assign_segment(u32 core, u32 segment, u64 start_seq) {
    littles_[core]->assign_segment({segment, start_seq});
    current_verifier_ = static_cast<int>(core);
    current_segment_ = segment;
    ++stats_.segments_started;
}

void meek_soc::tick_low_once() {
    const cycle_t lo = low_ticks_done_;
    fabric_->tick_low(lo);
    // Little cores run at their achievable clock: e.g. 5 core cycles per 4
    // low-domain cycles at 2 GHz.
    const cycle_t target = (lo + 1) * little_freq_mhz_ / cfg_.fabric.freq_mhz;
    while (little_ticks_done_ < target) {
        const cycle_t now = little_ticks_done_;
        if (!event_driven_) {
            // Exhaustive reference mode: every core ticks every little cycle.
            for (auto& lc : littles_) lc->tick(now);
        } else {
            // Per-core fast path: a parked core's tick is a pure counter
            // bump (or a no-op when idle), and its park condition cannot
            // change mid-cycle — deliveries and watermark advances all land
            // before this loop and unpark to runnable. account_parked(1)
            // replicates the tick exactly without re-deriving the stall.
            for (auto& lc : littles_) {
                switch (lc->park()) {
                    case little_core::park_state::idle_wait:
                        break;
                    case little_core::park_state::busy_wait:
                        if (now < lc->park_wake()) {
                            lc->account_parked(1);
                        } else {
                            lc->tick(now);
                        }
                        break;
                    case little_core::park_state::extern_wait:
                        lc->account_parked(1);
                        break;
                    case little_core::park_state::runnable:
                        lc->tick(now);
                        break;
                }
            }
        }
        ++little_ticks_done_;
    }
    ++low_ticks_done_;
    collect_results();
}

void meek_soc::advance_low_to(cycle_t big_cycle) {
    const cycle_t target = (big_cycle + 1) / 2;  // == ceil(big_cycle / 2)
    while (low_ticks_done_ < target) {
        if (event_driven_) {
            const cycle_t wake = next_activity_lo();
            if (wake > low_ticks_done_) {
                skip_span(std::min(wake, target));
                continue;
            }
        }
        tick_low_once();
    }
}

cycle_t meek_soc::next_activity_lo() const {
    const cycle_t lo = low_ticks_done_;
    cycle_t wake = k_never;
    for (const auto& lc : littles_) {
        switch (lc->park()) {
            case little_core::park_state::runnable:
                return lo;
            case little_core::park_state::busy_wait: {
                // First low cycle whose little-tick batch reaches the wake
                // point W (little cycles): smallest lo with T(lo+1) > W where
                // T(n) = n * little_freq / fabric_freq (floor).
                const cycle_t w = lc->park_wake();
                const cycle_t lo_w = ((w + 1) * cfg_.fabric.freq_mhz +
                                      little_freq_mhz_ - 1) /
                                         little_freq_mhz_ -
                                     1;
                wake = std::min(wake, std::max(lo_w, lo));
                break;
            }
            case little_core::park_state::idle_wait:
            case little_core::park_state::extern_wait:
                break;  // only an external event can wake these
        }
    }
    const cycle_t f = fabric_->next_event_lo();
    if (f != fabric_model::k_no_event) {
        // A due-but-blocked delivery (f <= lo) must keep retrying every low
        // cycle so delivery_retries stays exact: no skipping.
        if (f <= lo) return lo;
        wake = std::min(wake, f);
    }
    return wake;
}

void meek_soc::skip_span(cycle_t to_lo) {
    // Precondition: no activity in [low_ticks_done_, to_lo) — every little
    // core is parked (with busy wakes beyond the span) and no fabric event is
    // due, so the skipped ticks are pure counter increments.
    const cycle_t t_target = to_lo * little_freq_mhz_ / cfg_.fabric.freq_mhz;
    if (const cycle_t n = t_target - little_ticks_done_; n > 0) {
        for (auto& lc : littles_) lc->account_parked(n);
    }
    little_ticks_done_ = t_target;
    low_ticks_done_ = to_lo;
}

void meek_soc::step_low_for_wait(cycle_t& guard, const char* what) {
    // Quiescence means the wait condition can never be satisfied: nothing is
    // in flight and every checker needs external input. Detected identically
    // in both advance modes (it is a pure observation of parked state).
    const cycle_t wake = next_activity_lo();
    if (wake == k_never) {
        std::string msg(what);
        msg += ": SoC quiescent with unsatisfied wait (livelock averted);";
        for (u32 i = 0; i < littles_.size(); ++i) {
            const auto& lc = littles_[i];
            msg += " core" + std::to_string(i) + "=" +
                   (lc->idle()         ? "idle"
                    : lc->has_result() ? "report"
                                       : "checking") +
                   "/park" +
                   std::to_string(static_cast<int>(lc->park()));
        }
        throw soc_stall_error(msg);
    }
    if (event_driven_ && wake > low_ticks_done_) skip_span(wake);
    tick_low_once();
    if (++guard > k_drain_tick_bound) {
        throw soc_stall_error(std::string(what) + ": stall budget exhausted");
    }
}

void meek_soc::collect_results() {
    for (auto& lc : littles_) {
        if (!lc->has_result()) continue;
        const segment_result r = lc->collect_result();
        ++stats_.segments_verified;
        if (!r.passed) {
            ++stats_.segments_failed;
            ++stats_.errors_detected;
            detection_event ev;
            ev.kind = r.error.kind;
            ev.segment = r.segment;
            ev.detect_big_cycle = r.error.detect_lo_cycle *
                                  cfg_.big.freq_mhz / little_freq_mhz_;
            detections_.push_back(ev);
            if (error_ref_) error_ref_(ev);
        }
    }
}

cycle_t meek_soc::push_blocking(fwd_packet p, u32 path, cycle_t now_big,
                                cycle_t& stall_bucket) {
    advance_low_to(now_big);
    cycle_t guard = 0;
    while (!fabric_->can_accept(p.kind, path)) {
        step_low_for_wait(guard, "fabric push");
        const cycle_t nb = low_ticks_done_ * 2;
        if (nb > now_big) {
            stall_bucket += nb - now_big;
            now_big = nb;
        }
    }
    fabric_->push(p, path, now_big);
    return now_big;
}

cycle_t meek_soc::send_status(const arch_snapshot& snap, u32 boundary,
                              dest_mask_t dest, cycle_t now_big, u64 seq) {
    const cycle_t start = now_big;
    const u32 ports = cfg_.big.commit_width;
    for (u32 w = 0; w < k_snapshot_words; ++w) {
        fwd_packet p;
        p.kind = packet_kind::status_word;
        p.segment = boundary;
        p.word_index = static_cast<u16>(w);
        p.data = snapshot_word(snap, w);
        p.seq = seq;
        p.dest = dest;
        p.created_big_cycle = now_big;
        if (packet_ref_) packet_ref_(p);
        // PRF read ports deliver `ports` words per cycle.
        now_big = std::max(now_big, start + w / ports);
        now_big = push_blocking(p, w % cfg_.big.commit_width, now_big,
                                stats_.stall_forwarding);
    }
    deu_.note_status_words(k_snapshot_words);
    return now_big;
}

cycle_t meek_soc::fire_rcp(const commit_record& rec, cycle_t now_big, bool final_rcp) {
    const int old_verifier = current_verifier_;
    if (old_verifier < 0) return now_big;

    // End marker for the finishing segment.
    fwd_packet end;
    end.kind = packet_kind::segment_end;
    end.segment = current_segment_;
    end.data = segment_instrs_;
    end.seq = rec.seq;
    end.dest = bit(old_verifier);
    end.created_big_cycle = now_big;
    if (packet_ref_) packet_ref_(end);
    now_big = push_blocking(end, 0, now_big, stats_.stall_forwarding);

    const arch_snapshot snap = arch_snapshot::capture(big_->state());
    const u32 boundary = current_segment_ + 1;
    const u64 start_seq = rec.seq + 1;

    if (final_rcp) {
        // Program finished: the snapshot is only an ERCP for the last segment.
        now_big = send_status(snap, boundary, bit(old_verifier), now_big, rec.seq);
        extract_busy_until_ = now_big + deu_.extraction_cycles();
        return now_big;
    }

    const int next = find_idle_core();
    if (next >= 0) {
        assign_segment(static_cast<u32>(next), boundary, start_seq);
        // Selective broadcast: one multicast stream serves the old verifier's
        // ERCP and the new verifier's SRCP.
        now_big = send_status(snap, boundary,
                              static_cast<dest_mask_t>(bit(old_verifier) | bit(next)),
                              now_big, rec.seq);
    } else {
        // No checker free: the old verifier still gets its ERCP so it can
        // finish; the SRCP copy is sent once a core frees (pending).
        now_big = send_status(snap, boundary, bit(old_verifier), now_big, rec.seq);
        pending_ = pending_rcp{snap, boundary, start_seq};
        current_verifier_ = -1;
        current_segment_ = boundary;
    }
    extract_busy_until_ = now_big + deu_.extraction_cycles();
    segment_instrs_ = 0;
    segment_runtime_entries_ = 0;
    segment_start_seq_ = start_seq;
    return now_big;
}

cycle_t meek_soc::on_commit(const commit_record& rec, cycle_t proposed) {
    cycle_t t = proposed;
    if (!deu_.enabled()) {
        committed_watermark_ = rec.seq + 1;
        return t;
    }
    advance_low_to(t);

    // A pending RCP blocks all commits until a checker frees (the LSL "lock"
    // the paper describes in Sec. IV-C).
    if (pending_) {
        cycle_t guard = 0;
        while (find_idle_core() < 0) {
            step_low_for_wait(guard, "rcp wait");
        }
        const cycle_t nb = low_ticks_done_ * 2;
        if (nb > t) {
            stats_.stall_checker += nb - t;
            t = nb;
        }
        const int core = find_idle_core();
        assign_segment(static_cast<u32>(core), pending_->boundary, pending_->start_seq);
        t = send_status(pending_->snapshot, pending_->boundary, bit(core), t,
                        pending_->start_seq);
        pending_.reset();
    }

    // Snapshot extraction occupies the PRF read ports (data collecting).
    if (extract_busy_until_ > t) {
        stats_.stall_collecting += extract_busy_until_ - t;
        t = extract_busy_until_;
        advance_low_to(t);
    }

    // Run-time data extraction.
    if (auto pkt = deu_.runtime_packet(rec)) {
        pkt->segment = current_segment_;
        pkt->dest = bit(current_verifier_);
        pkt->created_big_cycle = t;
        if (packet_ref_) packet_ref_(*pkt);
        t = push_blocking(*pkt, static_cast<u32>(rec.seq % cfg_.big.commit_width), t,
                          stats_.stall_forwarding);
        ++segment_runtime_entries_;
    }
    ++segment_instrs_;
    committed_watermark_ = rec.seq + 1;
    // The watermark is the one park condition not signalled via deliver():
    // wake any checker stalled on the one-behind rule.
    for (auto& lc : littles_) lc->notify_external();

    if (deu_.check_trigger(rec, segment_runtime_entries_, segment_instrs_) !=
        rcp_trigger::none) {
        t = fire_rcp(rec, t, false);
    }
    return t;
}

void meek_soc::on_halt(cycle_t at) {
    (void)at;
    halted_seen_ = true;
}

meek_run_result meek_soc::run(const run_limits& limits) {
    meek_run_result result;
    if (prog_ == nullptr) return result;

    try {
        if (checking_) {
            assign_segment(0, 0, 0);
            send_status(arch_snapshot::capture(big_->state()), 0, bit(0), 0, 0);
        }

        result.big = big_->run(limits, checking_ ? this : nullptr);

        if (checking_) {
            cycle_t t = result.big.cycles;
            // An unresolved pending RCP here means zero instructions followed
            // the last boundary; there is nothing left to verify for it.
            pending_.reset();
            if (current_verifier_ >= 0) {
                commit_record final_rec;
                final_rec.seq = big_->stats().instructions == 0
                                    ? 0
                                    : big_->stats().instructions - 1;
                final_rec.commit_cycle = t;
                t = fire_rcp(final_rec, t, true);
            }
            // Let the tail checkers run out (the main thread is done, so the
            // one-behind rule no longer binds).
            committed_watermark_ = ~u64{0};
            for (auto& lc : littles_) lc->notify_external();
            cycle_t guard = 0;
            auto all_idle = [&] {
                return std::all_of(littles_.begin(), littles_.end(),
                                   [](const auto& lc) { return lc->idle(); });
            };
            while (!fabric_->drained() || !all_idle()) {
                step_low_for_wait(guard, "drain");
            }
            const cycle_t end_big = low_ticks_done_ * 2;
            result.drain_cycles = end_big > t ? end_big - t : 0;
        }
    } catch (const soc_stall_error& e) {
        result.error = e.what();
        result.big.truncated = true;
    }

    result.soc = stats_;
    result.verified_ok = stats_.segments_failed == 0 && result.error.empty();
    return result;
}

}  // namespace meek
