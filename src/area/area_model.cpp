#include "area/area_model.h"

#include <cmath>

namespace meek {
namespace {

// Baseline (Table II BOOM) reference values the component areas are
// normalized against.
constexpr double k_ref_width = 4.0;
constexpr double k_ref_rob = 128.0;
constexpr double k_ref_iq = 96.0;
constexpr double k_ref_prf = 128.0;
constexpr double k_ref_lsq = 64.0;  // LDQ + STQ entries
constexpr double k_ref_l1_kb = 32.0;
constexpr double k_ref_btb = 256.0;
constexpr double k_ref_tage = 1024.0;

double width_factor(double width) { return std::sqrt(width / k_ref_width); }

}  // namespace

std::vector<area_breakdown_entry> area_model::big_core_breakdown(
    const big_core_config& cfg) const {
    const double w = cfg.decode_width;
    const double bp =
        (0.5 * cfg.bpred.btb_entries / k_ref_btb +
         0.5 * cfg.bpred.tage_tables * cfg.bpred.tage_entries_per_table /
             (6.0 * k_ref_tage));
    // Component baselines sum to 2.811 mm² at the Table II configuration.
    return {
        {"front-end", 0.30 * (w / k_ref_width)},
        {"branch-predictor", 0.25 * bp},
        {"rename+rob", 0.28 * (cfg.rob_entries / k_ref_rob) * width_factor(w)},
        {"issue-queue", 0.30 * (cfg.iq_entries / k_ref_iq) * width_factor(w)},
        {"int-prf", 0.18 * (cfg.phys_int_regs / k_ref_prf) * width_factor(w)},
        {"fp-prf", 0.20 * (cfg.phys_fp_regs / k_ref_prf) * width_factor(w)},
        {"int-fus", 0.15 * (cfg.int_alus / 2.0)},
        {"fp-fus", 0.35 * (cfg.fp_alus / 1.0)},
        {"lsq", 0.16 * ((cfg.ldq_entries + cfg.stq_entries) / k_ref_lsq)},
        {"mem-ports", 0.10 * (cfg.mem_ports / 2.0)},
        {"l1i", 0.27 * (cfg.l1i.size_bytes / 1024.0 / k_ref_l1_kb)},
        {"l1d", 0.27 * (cfg.l1d.size_bytes / 1024.0 / k_ref_l1_kb)},
    };
}

double area_model::big_core_area(const big_core_config& cfg) const {
    double total = 0.0;
    for (const auto& entry : big_core_breakdown(cfg)) total += entry.mm2;
    return total;
}

double area_model::little_core_area(const little_core_config& cfg) const {
    // Default Rocket: 5-stage pipeline 0.030, FPU 0.014, 1-bit/cycle divider
    // 0.004, 4 KB L1I 0.012, CSR/misc 0.018  => 0.078 mm².
    // Optimized: 8-unroll divider 0.012, 3-stage pipelined FPU 0.020 => 0.092.
    const double pipeline = 0.030;
    const double l1i = 0.012 * (cfg.l1i.size_bytes / 4096.0);
    const double misc = 0.018;
    const double divider = 0.004 * (1.0 + (cfg.div_unroll() - 1) / 3.5);
    const double fpu =
        cfg.tuning == little_core_tuning::optimized ? 0.020 : 0.014;
    return pipeline + l1i + misc + divider + fpu;
}

double area_model::fabric_area(const fabric_config& cfg) const {
    if (cfg.kind == fabric_kind::axi_interconnect) return 0.040;
    // 0.027 mm² of links + HM-NoC routing, 0.024 mm² of DC-Buffer SRAM at the
    // default depth of 16.
    return 0.027 + 0.024 * (static_cast<double>(cfg.dc_buffer_depth) / 16.0);
}

double area_model::little_wrapper_area(const little_core_config& cfg) const {
    // 0.025 mm² MSU + 0.034 mm² of LSL SRAM at the 4 KB default.
    return 0.025 + 0.034 * (static_cast<double>(cfg.lsl_bytes) / 4096.0);
}

double area_model::meek_extra_area(const soc_config& cfg) const {
    return deu_area() + fabric_area(cfg.fabric) +
           cfg.num_little_cores *
               (little_core_area(cfg.little) + little_wrapper_area(cfg.little));
}

double area_model::meek_overhead_fraction(const soc_config& cfg) const {
    return meek_extra_area(cfg) / big_core_area(cfg.big);
}

double area_model::scale_area(double area_mm2, u32 from_nm, u32 to_nm) {
    const double ratio = static_cast<double>(to_nm) / static_cast<double>(from_nm);
    return area_mm2 * ratio * ratio;
}

double area_model::ea_lockstep_scale(const soc_config& cfg) const {
    const double big = big_core_area(cfg.big);
    const double target_per_core = (big + meek_extra_area(cfg)) / 2.0;
    // Bisection over the linear interpolation factor.
    double lo = 0.1;
    double hi = 1.0;
    for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double area = big_core_area(cfg.big.scaled(mid));
        if (area < target_per_core) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

big_core_config area_model::ea_lockstep_config(const soc_config& cfg) const {
    return cfg.big.scaled(ea_lockstep_scale(cfg));
}

}  // namespace meek
