// McPAT-style analytical area model, calibrated to the paper's TSMC-28nm
// synthesis anchors (Table III):
//   BOOM (Table II config)            2.811 mm²
//   optimized Rocket (excl. L1 D$)    0.092 mm²   (default Rocket: 0.078)
//   DEU                               0.071 mm²
//   F2                                0.051 mm²
//   per-little-core wrapper (LSL+MSU) 0.059 mm²
//   MEEK total extra (4 little cores) 0.726 mm²  = 25.8% of BOOM
//
// Component areas scale with the structure sizes in big_core_config, which
// is what lets the EA-LockStep solver find the area-equivalent scaled core.
#pragma once

#include <string>
#include <vector>

#include "common/config.h"

namespace meek {

struct area_breakdown_entry {
    std::string component;
    double mm2 = 0.0;
};

class area_model {
public:
    // Big OoO core area (mm² @ 28 nm), including L1 caches.
    double big_core_area(const big_core_config& cfg) const;
    std::vector<area_breakdown_entry> big_core_breakdown(
        const big_core_config& cfg) const;

    // Little core area excluding the L1 D$ (not needed for re-execution).
    double little_core_area(const little_core_config& cfg) const;

    double deu_area() const { return 0.071; }
    double f2_area() const { return 0.051; }
    double little_wrapper_area() const { return 0.059; }  // LSL + MSU

    // Config-aware variants for the off-registry knobs the design-space search
    // sweeps. Both are anchored so the Table II defaults reproduce the Table
    // III constants above exactly.
    //
    // Fabric: the F2's DC-Buffers are the dominant SRAM; their share scales
    // linearly with the per-FIFO depth (0.051 mm² at depth 16). The AXI
    // baseline is a fixed shared bus with no DC-Buffers or NoC nodes.
    double fabric_area(const fabric_config& cfg) const;
    // Wrapper: a fixed MSU part plus the LSL SRAM, linear in lsl_bytes
    // (0.059 mm² at the 4 KB default).
    double little_wrapper_area(const little_core_config& cfg) const;

    // Everything MEEK adds on top of the bare big core.
    double meek_extra_area(const soc_config& cfg) const;
    // Extra area as a fraction of the big core (the paper's 25.8%).
    double meek_overhead_fraction(const soc_config& cfg) const;

    // First-order technology scaling: area ~ (feature size)².
    static double scale_area(double area_mm2, u32 from_nm, u32 to_nm);

    // EA-LockStep construction (Sec. V-A): find the linear per-component
    // scale factor such that two scaled cores occupy the same silicon as one
    // big core plus the MEEK machinery. Returns the scaled configuration.
    big_core_config ea_lockstep_config(const soc_config& cfg) const;
    double ea_lockstep_scale(const soc_config& cfg) const;
};

}  // namespace meek
