#include "sched/pool.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

namespace meek::sched {

namespace {
// Which pool (if any) the current thread is a worker of, and its index —
// lets post() recognise the Chase-Lev owner and push bottom directly
// instead of detouring through its own inject ring.
thread_local const pool* tl_worker_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;
}  // namespace

queue_backend resolve_backend() {
    if (const char* env = std::getenv("MEEK_SCHED")) {
        if (std::strcmp(env, "mutex") == 0) return queue_backend::mutex;
    }
    return queue_backend::lockfree;
}

const char* backend_name(queue_backend b) {
    return b == queue_backend::mutex ? "mutex" : "lockfree";
}

std::optional<std::size_t> pool::this_worker_index() const {
    if (tl_worker_pool == this) return tl_worker_index;
    return std::nullopt;
}

pool::pool(u32 threads, queue_backend backend) : backend_(backend) {
    const u32 n = threads > 0 ? threads : 1;
    workers_.reserve(n);
    for (u32 i = 0; i < n; ++i) {
        workers_.push_back(std::make_unique<worker_state>());
    }
    threads_.reserve(n);
    for (u32 i = 0; i < n; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
    }
}

pool::~pool() {
    stopping_.store(true, std::memory_order_seq_cst);
    {
        // Taking the sleep mutex orders the flag before any sleeper's
        // predicate re-check, so no worker can block after the flag is up.
        std::lock_guard<std::mutex> lock(sleep_mutex_);
    }
    wake_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void pool::wake_one_if_sleeping() {
    // seq_cst pairs with the sleeper's seq_cst sleepers_++ / queued_ read:
    // either the sleeper's predicate sees our queued_ increment, or we see
    // its sleepers_ increment and notify. The empty lock/unlock closes the
    // window between a sleeper's predicate check and its actual block.
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
        { std::lock_guard<std::mutex> lock(sleep_mutex_); }
        wake_.notify_one();
    }
}

void pool::post(std::size_t home, task t) {
    const std::size_t h = home % workers_.size();
    worker_state& w = *workers_[h];
    // Count before publishing: if the push landed first, a worker could pop
    // the task and fetch_sub below zero, wrapping the counter and turning
    // every sleeper's "queued_ > 0" predicate into a busy spin until this
    // thread caught up. Counting first only risks one benign spurious scan.
    queued_.fetch_add(1, std::memory_order_seq_cst);
    if (backend_ == queue_backend::mutex) {
        w.mx_deque.push_bottom(std::move(t));
    } else if (tl_worker_pool == this && tl_worker_index == h) {
        // Chase-Lev owner path: this thread IS worker h, push is lock-free.
        w.cl_deque.push_bottom(new task(std::move(t)));
    } else {
        // External producer (or a sibling worker): MPMC inject ring. A full
        // ring means the home (and every thief) is saturated — backpressure,
        // not degradation: yield a bounded number of times so consumers get
        // cycles to drain, and only then fall back to the mutexed overflow
        // list (a worker blocked mid-task forever must not wedge posters).
        task* p = new task(std::move(t));
        bool pushed = w.inject.try_push(p);
        for (int spin = 0; !pushed && spin < kRingFullRetries; ++spin) {
            std::this_thread::yield();
            pushed = w.inject.try_push(p);
        }
        if (pushed) {
            w.posts_via_ring.fetch_add(1, std::memory_order_relaxed);
        } else {
            w.ring_full_posts.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(w.overflow_mutex);
            w.overflow.push_back(p);
            w.overflow_size.fetch_add(1, std::memory_order_relaxed);
        }
    }
    wake_one_if_sleeping();
}

void pool::drain_inject(std::size_t self) {
    worker_state& me = *workers_[self];
    task* p = nullptr;
    // Ring pops FIFO and the deque pushes bottom, so the producer's push
    // order is preserved: the executor's cheapest-first order still means
    // the owner's LIFO pop starts on its own most expensive job. The drain
    // is capped at one ring's worth per call so a producer refilling at
    // consumption speed cannot pin the owner in this loop forever.
    for (std::size_t moved = 0;
         moved < kInjectRingCapacity && me.inject.try_pop(&p); ++moved) {
        me.cl_deque.push_bottom(p);
    }
    if (me.overflow_size.load(std::memory_order_relaxed) > 0) {
        std::deque<task*> grabbed;
        {
            std::lock_guard<std::mutex> lock(me.overflow_mutex);
            grabbed.swap(me.overflow);
            me.overflow_size.store(0, std::memory_order_relaxed);
        }
        for (task* q : grabbed) me.cl_deque.push_bottom(q);
    }
}

bool pool::acquire(std::size_t self, task* out_fn, task** out_ptr, bool* stolen,
                   u64* attempts) {
    const std::size_t n = workers_.size();
    if (backend_ == queue_backend::mutex) {
        if (workers_[self]->mx_deque.pop_bottom(out_fn)) {
            *stolen = false;
            return true;
        }
        for (std::size_t k = 1; k < n; ++k) {
            const std::size_t victim = (self + k) % n;
            ++*attempts;
            if (workers_[victim]->mx_deque.steal_top(out_fn)) {
                *stolen = true;
                return true;
            }
        }
        return false;
    }

    drain_inject(self);
    if ((*out_ptr = workers_[self]->cl_deque.pop_bottom()) != nullptr) {
        *stolen = false;
        return true;
    }
    for (std::size_t k = 1; k < n; ++k) {
        worker_state& victim = *workers_[(self + k) % n];
        ++*attempts;
        // Deque top first (the victim's oldest = cheapest queued task), then
        // anything still parked in its inject ring, then — rarest — its
        // overflow list, so a blocked owner cannot strand backpressured work.
        if ((*out_ptr = victim.cl_deque.steal_top()) != nullptr) {
            *stolen = true;
            return true;
        }
        if (victim.inject.try_pop(out_ptr)) {
            *stolen = true;
            return true;
        }
        if (victim.overflow_size.load(std::memory_order_relaxed) > 0) {
            std::lock_guard<std::mutex> lock(victim.overflow_mutex);
            if (!victim.overflow.empty()) {
                *out_ptr = victim.overflow.front();
                victim.overflow.pop_front();
                victim.overflow_size.fetch_sub(1, std::memory_order_relaxed);
                *stolen = true;
                return true;
            }
        }
    }
    return false;
}

void pool::worker_loop(std::size_t self) {
    tl_worker_pool = this;
    tl_worker_index = self;
    worker_state& me = *workers_[self];
    u32 idle_sweeps = 0;
    for (;;) {
        task t;
        task* tp = nullptr;
        bool stolen = false;
        u64 attempts = 0;
        const bool got = acquire(self, &t, &tp, &stolen, &attempts);
        if (attempts > 0) {
            me.steal_attempts.fetch_add(attempts, std::memory_order_relaxed);
        }
        if (got) {
            idle_sweeps = 0;
            queued_.fetch_sub(1, std::memory_order_acq_rel);
            // Counted before the task runs: a caller that joined a batch
            // through its futures then reads stats() must see every one of
            // its jobs in `executed` (the body completes after this
            // increment in this thread's program order).
            me.executed.fetch_add(1, std::memory_order_relaxed);
            if (stolen) me.stolen.fetch_add(1, std::memory_order_relaxed);
            const auto start = std::chrono::steady_clock::now();
            if (tp != nullptr) {
                (*tp)();
                delete tp;
            } else {
                t();
            }
            const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - start)
                                .count();
            me.busy_ns.fetch_add(static_cast<u64>(ns),
                                 std::memory_order_relaxed);
            continue;
        }
        // Empty sweep: yield a few times before touching the condition
        // variable. This is what keeps the lock-free path fast in both
        // directions — a producer mid-publish (claimed a ring slot or a
        // queued_ increment, store not yet visible) gets cycles to finish
        // instead of being starved by spinning thieves, and a worker that
        // drained its bounded ring gives the producer a burst window instead
        // of futex-sleeping and paying a wake + context switch per task.
        if (++idle_sweeps <= kIdleYieldSweeps &&
            !stopping_.load(std::memory_order_acquire)) {
            std::this_thread::yield();
            continue;
        }
        idle_sweeps = 0;
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        wake_.wait(lock, [this] {
            return stopping_.load(std::memory_order_acquire) ||
                   queued_.load(std::memory_order_seq_cst) > 0;
        });
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
        // Drain-on-stop: only exit once nothing is queued anywhere. A task
        // another worker is *running* is its problem — the destructor joins
        // everyone, so nothing is abandoned.
        if (stopping_.load(std::memory_order_acquire) &&
            queued_.load(std::memory_order_acquire) == 0) {
            tl_worker_pool = nullptr;
            return;
        }
    }
}

pool_stats pool::stats() const {
    pool_stats s;
    s.workers.reserve(workers_.size());
    for (const auto& w : workers_) {
        worker_counters c;
        c.executed = w->executed.load(std::memory_order_relaxed);
        c.stolen = w->stolen.load(std::memory_order_relaxed);
        c.steal_attempts = w->steal_attempts.load(std::memory_order_relaxed);
        c.posts_via_ring = w->posts_via_ring.load(std::memory_order_relaxed);
        c.ring_full_posts = w->ring_full_posts.load(std::memory_order_relaxed);
        c.busy_ms =
            static_cast<double>(w->busy_ns.load(std::memory_order_relaxed)) / 1e6;
        s.workers.push_back(c);
    }
    return s;
}

void pool::reset_stats() {
    for (const auto& w : workers_) {
        w->executed.store(0, std::memory_order_relaxed);
        w->stolen.store(0, std::memory_order_relaxed);
        w->steal_attempts.store(0, std::memory_order_relaxed);
        w->posts_via_ring.store(0, std::memory_order_relaxed);
        w->ring_full_posts.store(0, std::memory_order_relaxed);
        w->busy_ns.store(0, std::memory_order_relaxed);
    }
}

}  // namespace meek::sched
