#include "sched/pool.h"

#include <chrono>

namespace meek::sched {

pool::pool(u32 threads) {
    const u32 n = threads > 0 ? threads : 1;
    workers_.reserve(n);
    for (u32 i = 0; i < n; ++i) {
        workers_.push_back(std::make_unique<worker_state>());
    }
    threads_.reserve(n);
    for (u32 i = 0; i < n; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
    }
}

pool::~pool() {
    stopping_.store(true, std::memory_order_release);
    {
        // Taking the sleep mutex orders the flag before any sleeper's
        // predicate re-check, so no worker can block after the flag is up.
        std::lock_guard<std::mutex> lock(sleep_mutex_);
    }
    wake_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void pool::post(std::size_t home, task t) {
    worker_state& w = *workers_[home % workers_.size()];
    // Count before publishing: if the push landed first, a worker could pop
    // the task and fetch_sub below zero, wrapping the counter and turning
    // every sleeper's "queued_ > 0" predicate into a busy spin until this
    // thread caught up. Counting first only risks one benign spurious scan.
    queued_.fetch_add(1, std::memory_order_release);
    w.deque.push_bottom(std::move(t));
    {
        // Same fence dance as the destructor: without this, the increment
        // could land between a sleeper's predicate check and its block,
        // and the notify would hit nobody.
        std::lock_guard<std::mutex> lock(sleep_mutex_);
    }
    wake_.notify_one();
}

bool pool::acquire(std::size_t self, task* out, bool* stolen, u64* attempts) {
    if (workers_[self]->deque.pop_bottom(out)) {
        *stolen = false;
        return true;
    }
    const std::size_t n = workers_.size();
    for (std::size_t k = 1; k < n; ++k) {
        const std::size_t victim = (self + k) % n;
        ++*attempts;
        if (workers_[victim]->deque.steal_top(out)) {
            *stolen = true;
            return true;
        }
    }
    return false;
}

void pool::worker_loop(std::size_t self) {
    worker_state& me = *workers_[self];
    for (;;) {
        task t;
        bool stolen = false;
        u64 attempts = 0;
        const bool got = acquire(self, &t, &stolen, &attempts);
        if (attempts > 0) {
            std::lock_guard<std::mutex> lock(me.counters_mutex);
            me.counters.steal_attempts += attempts;
        }
        if (got) {
            queued_.fetch_sub(1, std::memory_order_acq_rel);
            {
                // Counted before the task runs: a caller that joined a batch
                // through its futures then reads stats() must see every one
                // of its jobs in `executed` (the body completes after this
                // increment in this thread's program order).
                std::lock_guard<std::mutex> lock(me.counters_mutex);
                ++me.counters.executed;
                if (stolen) ++me.counters.stolen;
            }
            const auto start = std::chrono::steady_clock::now();
            t();
            const double ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
            std::lock_guard<std::mutex> lock(me.counters_mutex);
            me.counters.busy_ms += ms;
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        wake_.wait(lock, [this] {
            return stopping_.load(std::memory_order_acquire) ||
                   queued_.load(std::memory_order_acquire) > 0;
        });
        // Drain-on-stop: only exit once nothing is queued anywhere. A task
        // another worker is *running* is its problem — the destructor joins
        // everyone, so nothing is abandoned.
        if (stopping_.load(std::memory_order_acquire) &&
            queued_.load(std::memory_order_acquire) == 0) {
            return;
        }
    }
}

pool_stats pool::stats() const {
    pool_stats s;
    s.workers.reserve(workers_.size());
    for (const auto& w : workers_) {
        std::lock_guard<std::mutex> lock(w->counters_mutex);
        s.workers.push_back(w->counters);
    }
    return s;
}

void pool::reset_stats() {
    for (const auto& w : workers_) {
        std::lock_guard<std::mutex> lock(w->counters_mutex);
        w->counters = worker_counters{};
    }
}

}  // namespace meek::sched
