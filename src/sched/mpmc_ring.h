// Bounded lock-free MPMC ring (Vyukov's array queue): the inject path for
// external posts into the scheduler — gateway accept threads, service
// handlers, and any other non-worker producer that cannot touch a Chase-Lev
// deque's owner end.
//
// Each cell carries a sequence number that encodes whose turn the slot is:
//   seq == pos          -> free, the producer that claims `pos` may fill it
//   seq == pos + 1      -> full, the consumer that claims `pos` may empty it
//   anything behind pos -> the ring has wrapped: full (producer) / empty
//                          (consumer), so fail fast instead of spinning.
// Producers CAS the enqueue cursor, write the value, then release-store
// seq = pos + 1; consumers acquire-load seq, CAS the dequeue cursor, read the
// value, then release-store seq = pos + capacity so the slot is free again on
// the next lap. The value field itself is plain data — the seq release/
// acquire pair is the handoff, so there is no data race on it.
//
// try_push/try_pop never block and never spin unboundedly: a full ring fails
// the push (the pool's backpressure path catches it), an empty ring fails the
// pop. Capacity is rounded up to a power of two.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/types.h"

namespace meek::sched {

template <class T>
class mpmc_ring {
public:
    explicit mpmc_ring(std::size_t capacity)
        : mask_(round_up_pow2(capacity) - 1),
          cells_(new cell[mask_ + 1]) {
        for (std::size_t i = 0; i <= mask_; ++i) {
            cells_[i].seq.store(i, std::memory_order_relaxed);
        }
    }

    mpmc_ring(const mpmc_ring&) = delete;
    mpmc_ring& operator=(const mpmc_ring&) = delete;

    std::size_t capacity() const { return mask_ + 1; }

    // False when the ring is full (the caller owns the fallback).
    bool try_push(T value) {
        cell* c;
        std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
        for (;;) {
            c = &cells_[pos & mask_];
            const std::size_t seq = c->seq.load(std::memory_order_acquire);
            const auto dif = static_cast<std::ptrdiff_t>(seq) -
                             static_cast<std::ptrdiff_t>(pos);
            if (dif == 0) {
                if (enqueue_pos_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    break;
                }
            } else if (dif < 0) {
                return false;  // a full lap behind: ring is full
            } else {
                pos = enqueue_pos_.load(std::memory_order_relaxed);
            }
        }
        c->value = std::move(value);
        c->seq.store(pos + 1, std::memory_order_release);
        return true;
    }

    // False when the ring is empty.
    bool try_pop(T* out) {
        cell* c;
        std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
        for (;;) {
            c = &cells_[pos & mask_];
            const std::size_t seq = c->seq.load(std::memory_order_acquire);
            const auto dif = static_cast<std::ptrdiff_t>(seq) -
                             static_cast<std::ptrdiff_t>(pos + 1);
            if (dif == 0) {
                if (dequeue_pos_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    break;
                }
            } else if (dif < 0) {
                return false;  // nothing published at this position yet
            } else {
                pos = dequeue_pos_.load(std::memory_order_relaxed);
            }
        }
        *out = std::move(c->value);
        c->seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
    }

    // Approximate (racy) occupancy — diagnostics only.
    std::size_t size_estimate() const {
        const std::size_t e = enqueue_pos_.load(std::memory_order_relaxed);
        const std::size_t d = dequeue_pos_.load(std::memory_order_relaxed);
        return e > d ? e - d : 0;
    }

private:
    struct cell {
        std::atomic<std::size_t> seq;
        T value;
    };

    static std::size_t round_up_pow2(std::size_t n) {
        std::size_t p = 1;
        while (p < n) p <<= 1;
        return p < 4 ? 4 : p;
    }

    const std::size_t mask_;
    std::unique_ptr<cell[]> cells_;
    // Producers and consumers hammer different cursors; keep them apart.
    alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
    alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace meek::sched
