// The unified work-stealing worker pool under every parallel layer of the
// harness: sim::executor fans simulation jobs through it, and its placement
// helper (sched/placement.h) shards gateway batches and search slices with
// the same cost-balancing rule.
//
// Scheduling model:
//   * every worker owns one task_deque; a posted task names its *home*
//     worker (cost-aware placement computed by the caller, or round-robin);
//   * a worker drains its own deque LIFO (newest first), and when that runs
//     dry it steals FIFO (oldest first) from the other workers, scanning
//     from its right-hand neighbour so thieves spread instead of mobbing
//     worker 0;
//   * an idle worker with nothing to steal sleeps on a condition variable
//     and is woken by the next post.
//
// Determinism: the pool promises nothing about *execution order* — callers
// that need deterministic results must key them by submission index, the way
// sim::executor's futures do. What the pool does promise is drain-on-stop
// (the destructor runs every posted task before joining) and per-worker
// counters (executed / stolen / steal attempts / busy time) so a campaign
// can see whether the tail was placement or theft.
//
// Tasks must not throw: the pool runs raw std::function<void()> thunks on
// worker threads with no future to catch an exception. sim::executor wraps
// every job in a packaged_task, which routes exceptions into the job's
// future; anything posting directly owes the same discipline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/deque.h"

namespace meek::sched {

// One worker's lifetime counters. `stolen` counts tasks this worker took
// from someone else's deque; `executed` includes them.
struct worker_counters {
    u64 executed = 0;
    u64 stolen = 0;
    u64 steal_attempts = 0;  // probes of other deques, successful or not
    double busy_ms = 0.0;    // wall time spent inside tasks
};

struct pool_stats {
    std::vector<worker_counters> workers;

    u64 executed() const {
        u64 n = 0;
        for (const worker_counters& w : workers) n += w.executed;
        return n;
    }
    u64 steals() const {
        u64 n = 0;
        for (const worker_counters& w : workers) n += w.stolen;
        return n;
    }
    u64 steal_attempts() const {
        u64 n = 0;
        for (const worker_counters& w : workers) n += w.steal_attempts;
        return n;
    }
    double busy_ms() const {
        double ms = 0.0;
        for (const worker_counters& w : workers) ms += w.busy_ms;
        return ms;
    }
};

class pool {
public:
    // Exactly `threads` workers (floored at 1) — thread-count *resolution*
    // (MEEK_THREADS and friends) stays the executor's business.
    explicit pool(u32 threads);

    // Drains every posted task, then joins the workers.
    ~pool();

    pool(const pool&) = delete;
    pool& operator=(const pool&) = delete;

    u32 size() const { return static_cast<u32>(workers_.size()); }

    // Queue `t` on worker `home`'s deque (mod size, so any index is legal)
    // and wake a sleeper. Thread-safe, including from inside tasks.
    void post(std::size_t home, task t);

    pool_stats stats() const;
    void reset_stats();

private:
    struct worker_state {
        task_deque deque;
        // Counters are written only by the owning worker thread; the mutex
        // exists for stats() readers.
        mutable std::mutex counters_mutex;
        worker_counters counters;
    };

    void worker_loop(std::size_t self);
    // Own deque first, then steal sweep. Returns false when every deque came
    // up empty.
    bool acquire(std::size_t self, task* out, bool* stolen, u64* attempts);

    std::vector<std::unique_ptr<worker_state>> workers_;
    std::vector<std::thread> threads_;

    std::mutex sleep_mutex_;
    std::condition_variable wake_;
    std::atomic<u64> queued_{0};
    std::atomic<bool> stopping_{false};
};

}  // namespace meek::sched
