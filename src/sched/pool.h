// The unified work-stealing worker pool under every parallel layer of the
// harness: sim::executor fans simulation jobs through it, and its placement
// helper (sched/placement.h) shards gateway batches and search slices with
// the same cost-balancing rule.
//
// Scheduling model:
//   * every worker owns one deque; a posted task names its *home* worker
//     (cost-aware placement computed by the caller, or round-robin);
//   * a worker drains its own deque LIFO (newest first), and when that runs
//     dry it steals FIFO (oldest first) from the other workers, scanning
//     from its right-hand neighbour so thieves spread instead of mobbing
//     worker 0;
//   * an idle worker with nothing to steal sleeps on a condition variable
//     and is woken by the next post.
//
// Queue backends (`MEEK_SCHED=mutex|lockfree`, default lockfree): the hot
// path is lock-free — each worker owns a Chase-Lev deque (sched/chase_lev.h)
// it alone pushes/pops at the bottom, thieves CAS the top, and posts from
// *other* threads (the executor's caller, gateway accept threads, service
// handlers) enter through the home worker's bounded MPMC inject ring
// (sched/mpmc_ring.h), which the owner drains into its deque before popping
// so the caller's cheapest-first push order still yields
// run-own-longest-first LIFO. A full ring falls back to a tiny mutexed
// overflow list (counted in `ring_full_posts`) instead of blocking the
// producer. `mutex` selects the original one-mutex-per-deque task_deque —
// kept as the A/B baseline and escape hatch, same contract, same counters.
//
// Determinism: the pool promises nothing about *execution order* — callers
// that need deterministic results must key them by submission index, the way
// sim::executor's futures do. What the pool does promise is drain-on-stop
// (the destructor runs every posted task before joining) and per-worker
// counters — all relaxed atomics, so stats() is a wait-free snapshot, no
// per-worker mutex — so a campaign can see whether the tail was placement
// or theft.
//
// Tasks must not throw: the pool runs raw std::function<void()> thunks on
// worker threads with no future to catch an exception. sim::executor wraps
// every job in a packaged_task, which routes exceptions into the job's
// future; anything posting directly owes the same discipline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "sched/chase_lev.h"
#include "sched/deque.h"
#include "sched/mpmc_ring.h"

namespace meek::sched {

// Which queue structures back the pool. `lockfree` is the default hot path;
// `mutex` is the original implementation, kept runtime-selectable so the two
// stay A/B-benchmarkable (bench/sched_bench.cpp) and cross-checkable in CI.
enum class queue_backend { mutex, lockfree };

// MEEK_SCHED=mutex|lockfree, anything else (or unset) -> lockfree.
queue_backend resolve_backend();
const char* backend_name(queue_backend b);

// One worker's lifetime counters. `stolen` counts tasks this worker took
// from someone else's deque or inject ring; `executed` includes them.
// `posts_via_ring` / `ring_full_posts` count tasks that *entered* this
// worker's inject ring / overflowed it (zero under the mutex backend).
struct worker_counters {
    u64 executed = 0;
    u64 stolen = 0;
    u64 steal_attempts = 0;  // probes of other workers, successful or not
    u64 posts_via_ring = 0;
    u64 ring_full_posts = 0;
    double busy_ms = 0.0;    // wall time spent inside tasks
};

struct pool_stats {
    std::vector<worker_counters> workers;

    u64 executed() const {
        u64 n = 0;
        for (const worker_counters& w : workers) n += w.executed;
        return n;
    }
    u64 steals() const {
        u64 n = 0;
        for (const worker_counters& w : workers) n += w.stolen;
        return n;
    }
    u64 steal_attempts() const {
        u64 n = 0;
        for (const worker_counters& w : workers) n += w.steal_attempts;
        return n;
    }
    u64 posts_via_ring() const {
        u64 n = 0;
        for (const worker_counters& w : workers) n += w.posts_via_ring;
        return n;
    }
    u64 ring_full_posts() const {
        u64 n = 0;
        for (const worker_counters& w : workers) n += w.ring_full_posts;
        return n;
    }
    // Fraction of steal probes that came back with a task (0 when none ran).
    double steal_success_rate() const {
        const u64 attempts = steal_attempts();
        return attempts > 0 ? static_cast<double>(steals()) / attempts : 0.0;
    }
    double busy_ms() const {
        double ms = 0.0;
        for (const worker_counters& w : workers) ms += w.busy_ms;
        return ms;
    }
};

class pool {
public:
    // Per-worker inject-ring capacity (tasks); posts past it take the
    // mutexed overflow path. Exposed so the backpressure tests can exceed it.
    static constexpr std::size_t kInjectRingCapacity = 1024;
    // How many times a poster yields waiting for ring space before giving up
    // and taking the overflow lock. Bounded so a worker that blocks forever
    // inside a task cannot wedge external posters.
    static constexpr int kRingFullRetries = 64;
    // How many empty steal sweeps a worker tolerates (yielding between them)
    // before it blocks on the condition variable. Yield-then-sleep keeps a
    // briefly-starved worker off the futex and gives a mid-publish producer
    // the cycles to finish.
    static constexpr u32 kIdleYieldSweeps = 4;

    // Exactly `threads` workers (floored at 1) — thread-count *resolution*
    // (MEEK_THREADS and friends) stays the executor's business. The backend
    // defaults to the MEEK_SCHED environment switch.
    explicit pool(u32 threads, queue_backend backend = resolve_backend());

    // Drains every posted task, then joins the workers.
    ~pool();

    pool(const pool&) = delete;
    pool& operator=(const pool&) = delete;

    u32 size() const { return static_cast<u32>(workers_.size()); }
    queue_backend backend() const { return backend_; }

    // Queue `t` on worker `home`'s deque (mod size, so any index is legal)
    // and wake a sleeper. Thread-safe, including from inside tasks; under
    // the lockfree backend a worker posting to itself takes the owner path,
    // every other producer goes through the home worker's inject ring.
    void post(std::size_t home, task t);

    // The calling thread's worker index in *this* pool, or nullopt when the
    // caller is not one of this pool's workers. A task that posts follow-up
    // work to `*this_worker_index()` takes the lock-free Chase-Lev owner
    // path; the guaranteed-steal tests also use it to pin work to a worker
    // that is known to be busy.
    std::optional<std::size_t> this_worker_index() const;

    // Wait-free counter snapshot (relaxed atomic reads, no mutex).
    pool_stats stats() const;
    void reset_stats();

private:
    struct worker_state {
        // Lock-free backend: owner deque + external-producer inject ring +
        // ring-full overflow (mutexed, cold path only).
        chase_lev_deque<task> cl_deque;
        mpmc_ring<task*> inject{kInjectRingCapacity};
        std::mutex overflow_mutex;
        std::deque<task*> overflow;
        std::atomic<u32> overflow_size{0};

        // Mutex backend: the original one-mutex deque.
        task_deque mx_deque;

        // Counters are relaxed atomics: written by whichever thread did the
        // deed, snapshotted by stats() without stopping anyone.
        std::atomic<u64> executed{0};
        std::atomic<u64> stolen{0};
        std::atomic<u64> steal_attempts{0};
        std::atomic<u64> posts_via_ring{0};
        std::atomic<u64> ring_full_posts{0};
        std::atomic<u64> busy_ns{0};
    };

    void worker_loop(std::size_t self);
    // Own queues first, then steal sweep. Exactly one of *out_fn (mutex
    // backend) / *out_ptr (lockfree backend) is filled on success. Returns
    // false when every queue came up empty.
    bool acquire(std::size_t self, task* out_fn, task** out_ptr, bool* stolen,
                 u64* attempts);
    // Owner-only: move everything from the inject ring (and overflow, if
    // any) into the Chase-Lev deque, restoring the caller's push order.
    void drain_inject(std::size_t self);
    void wake_one_if_sleeping();

    std::vector<std::unique_ptr<worker_state>> workers_;
    std::vector<std::thread> threads_;
    const queue_backend backend_;

    std::mutex sleep_mutex_;
    std::condition_variable wake_;
    std::atomic<u64> queued_{0};
    std::atomic<u32> sleepers_{0};
    std::atomic<bool> stopping_{false};
};

}  // namespace meek::sched
