// Per-worker task deque with the classic work-stealing discipline: the
// owning worker pushes and pops at the bottom (LIFO — the task it just
// placed is the one whose data is hottest), thieves take from the top
// (FIFO — the oldest task, the one the owner is furthest from reaching).
//
// One mutex per deque, not one per pool: the owner and at most one thief
// contend on a single worker's queue, never the whole pool. This is the
// `MEEK_SCHED=mutex` backend — the original implementation, kept as the
// A/B baseline and escape hatch for sched::pool's lock-free hot path
// (chase_lev.h + mpmc_ring.h), which replaced it once fine-grained tasks
// (serve lines, search probes) made one lock per push/pop/steal the
// throughput ceiling. Same contract either way: scheduling order may vary
// run to run; results are keyed by submission index.
#pragma once

#include <deque>
#include <functional>
#include <mutex>
#include <utility>

#include "common/types.h"

namespace meek::sched {

using task = std::function<void()>;

class task_deque {
public:
    // Owner side: newest task goes to the bottom.
    void push_bottom(task t) {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(t));
    }

    // Owner side: LIFO pop. False when the deque is empty.
    bool pop_bottom(task* out) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty()) return false;
        *out = std::move(tasks_.back());
        tasks_.pop_back();
        return true;
    }

    // Thief side: FIFO steal of the oldest task. False when empty.
    bool steal_top(task* out) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty()) return false;
        *out = std::move(tasks_.front());
        tasks_.pop_front();
        return true;
    }

    std::size_t size() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return tasks_.size();
    }

private:
    mutable std::mutex mutex_;
    std::deque<task> tasks_;
};

}  // namespace meek::sched
