// Deterministic cost-aware placement: map a batch of cost-hinted items onto
// a fixed number of bins (pool workers, gateway workers, search shards) so no
// bin ends up owning a disproportionate share of the estimated work.
//
// The assignment is a pure function of (costs, bins) — never of thread
// timing, worker health, or anything else that varies run to run — which is
// what lets three very different layers share it:
//   * sched::pool / sim::executor pick each job's home deque with it,
//   * serve::gateway shards request lines across worker processes with it,
//   * search's shard split replaces "position mod N" with it.
// Wherever the downstream contract is "output is byte-identical at any
// worker count", that holds because result ordering is keyed by submission
// index, not by who evaluated what; placement only shapes wall-clock.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace meek::sched {

// Greedy LPT (longest-processing-time-first): items are considered in
// descending cost order (stable — equal costs keep index order) and each is
// placed on the currently least-loaded bin, lowest bin index winning ties.
// Classic 4/3-approximation of the optimal makespan; with equal costs it
// degenerates to exact round-robin, so callers that used "index mod N" get
// the same assignment back on uniform batches.
//
// Costs that are NaN or negative count as zero. `bins == 0` returns an empty
// vector for an empty batch and an all-zero assignment otherwise (the caller
// has one logical bin whether it likes it or not).
std::vector<std::size_t> balanced_assignment(std::span<const double> costs,
                                             std::size_t bins);

// The per-bin cost totals implied by `assignment` — the skew diagnostic a
// stats line wants next to the steal counters. `assignment[i]` values >=
// `bins` are ignored.
std::vector<double> bin_loads(std::span<const double> costs,
                              std::span<const std::size_t> assignment,
                              std::size_t bins);

}  // namespace meek::sched
