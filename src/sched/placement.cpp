#include "sched/placement.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace meek::sched {
namespace {

double sane_cost(double c) { return (std::isfinite(c) && c > 0.0) ? c : 0.0; }

}  // namespace

std::vector<std::size_t> balanced_assignment(std::span<const double> costs,
                                             std::size_t bins) {
    std::vector<std::size_t> assignment(costs.size(), 0);
    if (bins <= 1 || costs.empty()) return assignment;

    // Descending cost, stable: equal-cost items keep submission order, which
    // is what makes the uniform case collapse to round-robin.
    std::vector<std::size_t> order(costs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&costs](std::size_t a, std::size_t b) {
        return sane_cost(costs[a]) > sane_cost(costs[b]);
    });

    // Linear argmin per item: bins is a worker count (a handful), so a heap
    // would cost more in constants than it saves.
    std::vector<double> load(bins, 0.0);
    for (const std::size_t item : order) {
        std::size_t best = 0;
        for (std::size_t b = 1; b < bins; ++b) {
            if (load[b] < load[best]) best = b;
        }
        assignment[item] = best;
        load[best] += sane_cost(costs[item]);
    }
    return assignment;
}

std::vector<double> bin_loads(std::span<const double> costs,
                              std::span<const std::size_t> assignment,
                              std::size_t bins) {
    std::vector<double> load(bins, 0.0);
    const std::size_t n = std::min(costs.size(), assignment.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (assignment[i] < bins) load[assignment[i]] += sane_cost(costs[i]);
    }
    return load;
}

}  // namespace meek::sched
