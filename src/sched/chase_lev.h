// Chase-Lev work-stealing deque: the lock-free owner path of the scheduler.
//
// One owner thread pushes and pops at the bottom; any number of thieves CAS
// the top. The orderings follow Lê/Pop/Cohen/Nardelli, "Correct and
// Efficient Work-Stealing for Weak Memory Models" (PPoPP'13), with the
// standalone seq_cst fences folded into the `bottom`/`top` accesses so the
// synchronization is visible to ThreadSanitizer:
//
//   * push  — write the slot (relaxed, but the slot itself is atomic), then
//     publish with a release store of `bottom`; a thief that observes the new
//     bottom (acquire/seq_cst load) therefore observes the slot write.
//   * pop   — reserve the bottom element with a seq_cst store of the
//     decremented `bottom`, then a seq_cst load of `top`: either this pop
//     sees a racing steal's CAS, or that steal sees the reservation. The
//     final element is arbitrated by the same CAS on `top` the thieves use.
//   * steal — seq_cst loads of `top` then `bottom`, read the slot, then CAS
//     `top`; a lost CAS means another thief (or the owner's last-element pop)
//     won, and the stale slot value read before the CAS is discarded. Slots
//     are std::atomic<T*> precisely so that stale read is a valid atomic
//     load, not a data race.
//
// The buffer is a growable circular array of atomic slots. Only the owner
// grows it (inside push); retired arrays are kept on a chain until the deque
// is destroyed, because a slow thief may still be reading the old array —
// its CAS on `top` will fail and the stale value is dropped, but the memory
// must stay valid. This trades a bounded amount of memory (arrays total at
// most 2x the peak) for not needing hazard pointers or epochs.
//
// Element type is a raw pointer: ownership transfers on a successful pop or
// steal; whatever the deque still holds at destruction is deleted by the
// destructor (which runs when no other thread can touch the deque).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "common/types.h"

namespace meek::sched {

template <class T>
class chase_lev_deque {
public:
    explicit chase_lev_deque(std::size_t initial_capacity = 64)
        : array_(new ring_array(round_up_pow2(initial_capacity), nullptr)) {}

    chase_lev_deque(const chase_lev_deque&) = delete;
    chase_lev_deque& operator=(const chase_lev_deque&) = delete;

    ~chase_lev_deque() {
        // By the time a deque dies no owner or thief can still be running,
        // so a plain owner-side drain reclaims whatever was never taken.
        for (T* leftover = pop_bottom(); leftover; leftover = pop_bottom()) {
            delete leftover;
        }
        ring_array* a = array_.load(std::memory_order_relaxed);
        while (a != nullptr) {
            ring_array* prev = a->retired_prev;
            delete a;
            a = prev;
        }
    }

    // Owner only. Never fails: a full buffer grows (the old array is retired,
    // not freed, so concurrent thieves keep reading valid memory).
    void push_bottom(T* item) {
        const i64 b = bottom_.load(std::memory_order_relaxed);
        const i64 t = top_.load(std::memory_order_acquire);
        ring_array* a = array_.load(std::memory_order_relaxed);
        if (b - t >= static_cast<i64>(a->capacity)) {
            a = grow(a, t, b);
        }
        a->slot(b).store(item, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_release);
    }

    // Owner only. LIFO; nullptr when empty. The last element is arbitrated
    // against concurrent thieves via CAS on `top`.
    T* pop_bottom() {
        const i64 b = bottom_.load(std::memory_order_relaxed) - 1;
        ring_array* a = array_.load(std::memory_order_relaxed);
        bottom_.store(b, std::memory_order_seq_cst);
        i64 t = top_.load(std::memory_order_seq_cst);
        if (t <= b) {
            T* item = a->slot(b).load(std::memory_order_relaxed);
            if (t == b) {
                // Last element: win the race against thieves or concede.
                if (!top_.compare_exchange_strong(t, t + 1,
                                                  std::memory_order_seq_cst,
                                                  std::memory_order_relaxed)) {
                    item = nullptr;
                }
                bottom_.store(b + 1, std::memory_order_relaxed);
            }
            return item;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
        return nullptr;
    }

    // Any thread. FIFO; nullptr when the deque looked empty *or* the CAS was
    // lost to a racing pop/steal — callers treat both as "try elsewhere",
    // which is sound because the pool's queued-task counter keeps an idle
    // worker from sleeping while anything is still pending.
    T* steal_top() {
        i64 t = top_.load(std::memory_order_seq_cst);
        const i64 b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b) return nullptr;
        ring_array* a = array_.load(std::memory_order_acquire);
        T* item = a->slot(t).load(std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
            return nullptr;
        }
        return item;
    }

    // Approximate (racy) size — diagnostics only.
    std::size_t size_estimate() const {
        const i64 b = bottom_.load(std::memory_order_relaxed);
        const i64 t = top_.load(std::memory_order_relaxed);
        return b > t ? static_cast<std::size_t>(b - t) : 0;
    }

    std::size_t capacity() const {
        return array_.load(std::memory_order_relaxed)->capacity;
    }

private:
    struct ring_array {
        ring_array(std::size_t cap, ring_array* prev)
            : capacity(cap), mask(cap - 1), slots(new std::atomic<T*>[cap]),
              retired_prev(prev) {}
        std::atomic<T*>& slot(i64 i) {
            return slots[static_cast<std::size_t>(i) & mask];
        }
        const std::size_t capacity;
        const std::size_t mask;
        std::unique_ptr<std::atomic<T*>[]> slots;
        ring_array* retired_prev;  // chain of outgrown arrays, freed at ~deque
    };

    static std::size_t round_up_pow2(std::size_t n) {
        std::size_t p = 1;
        while (p < n) p <<= 1;
        return p < 8 ? 8 : p;
    }

    // Owner only (called from push_bottom). Copies the live window [top,
    // bottom) into a doubled array and publishes it; the old array stays on
    // the retired chain for thieves still holding its pointer.
    ring_array* grow(ring_array* old, i64 t, i64 b) {
        ring_array* bigger = new ring_array(old->capacity * 2, old);
        for (i64 i = t; i < b; ++i) {
            bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                                  std::memory_order_relaxed);
        }
        array_.store(bigger, std::memory_order_release);
        return bigger;
    }

    // top_ only ever increases; bottom_ is owner-written. Separate cache
    // lines so thief CAS traffic does not invalidate the owner's hot index.
    alignas(64) std::atomic<i64> top_{0};
    alignas(64) std::atomic<i64> bottom_{0};
    alignas(64) std::atomic<ring_array*> array_;
};

}  // namespace meek::sched
