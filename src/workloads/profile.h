// Per-benchmark synthetic workload profiles.
//
// The paper evaluates full SPECint2006 and PARSEC (simmedium). Neither suite
// can be redistributed or compiled here, so each benchmark is replaced by a
// synthetic kernel whose *dynamic instruction-level behaviour* is calibrated
// to the published characterization of that benchmark: instruction-class mix
// (loads/stores/branches/mul/div/FP), working-set size, memory-access
// regularity and branch predictability. These are the properties MEEK's
// overheads actually depend on: commit bandwidth, memory-op density (LSL
// fill rate and fabric traffic), and little-core CPI on the mix (divider and
// FPU pressure). swaptions is division-heavy, as Sec. V-A requires.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace meek {

struct workload_profile {
    std::string name;
    std::string suite;  // "SPEC06" or "PARSEC"

    // Dynamic instruction-mix fractions; the remainder is plain integer ALU.
    double load_frac = 0.25;
    double store_frac = 0.10;
    double branch_frac = 0.15;
    double mul_frac = 0.01;
    double div_frac = 0.0;
    double fp_frac = 0.0;      // FP add/mul (pipelined FPU classes)
    double fp_div_frac = 0.0;  // FP divide / sqrt
    double csr_frac = 0.001;   // non-repeatable CSR reads

    // Fraction of branches that are data-dependent (unpredictable); the rest
    // follow loop/structured patterns TAGE learns.
    double branch_random_frac = 0.10;

    u32 working_set_kb = 256;
    double irregular_frac = 0.1;  // fraction of accesses with random indexing

    u64 default_instructions = 300'000;

    // nZDC could not compile gcc, omnetpp, xalancbmk, freqmine (Sec. V-A).
    bool nzdc_supported = true;

    // Static code footprint (text segment) the generator unrolls to. Large
    // SPEC codes (gcc, perlbench, xalancbmk) stress the I-caches — which is
    // what makes EA-LockStep's smaller L1I and nZDC's ~2.2x code expansion
    // expensive on SPEC (and what the paper's gap analysis flags about small
    // little-core I$ configurations).
    u32 code_kb = 8;
};

std::span<const workload_profile> spec06_profiles();
std::span<const workload_profile> parsec_profiles();
const workload_profile* find_profile(const std::string& name);

// Content hash over every generation-relevant field (name, suite, mix
// fractions, working set, code footprint). Two profiles that would generate
// different programs never collide, and a renamed-but-identical profile does
// not alias a stale entry — this is what makes a workload cache keyed on the
// fingerprint content-addressed rather than name-addressed.
u64 profile_fingerprint(const workload_profile& p);

}  // namespace meek
