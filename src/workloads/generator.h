// Synthetic-kernel generator: turns a workload_profile into an MRV program
// whose dynamic instruction mix, working set, access regularity and branch
// behaviour match the profile.
//
// Register convention (all architectural registers < x16 so the nZDC
// transform can shadow into x16..x31):
//   x1  outer-loop counter          x2  stack pointer (reserved)
//   x3  data base                   x4  working-set mask (bytes)
//   x5  xorshift PRNG state         x6  sequential cursor
//   x7  effective-address scratch   x8..x12 rotating temporaries
//   x13 live accumulator (feeds stores: corruption propagates)
//   x14 write-before-read scratch   x15 stride constant
//   f1..f6 working FP registers     f7, f8 near-1.0 constants
#pragma once

#include <memory>

#include "isa/program.h"
#include "workloads/profile.h"

namespace meek {

struct generated_workload {
    program prog;
    u64 expected_dynamic_instructions = 0;
    u32 static_block_size = 0;  // instructions per loop body
};

generated_workload generate_workload(const workload_profile& profile,
                                     u64 target_instructions,
                                     u64 seed = 0xC0FFEE);

// Abstract provider the sim layer can pull workloads through instead of
// calling generate_workload directly. Lets a session interpose a shared
// content-addressed cache (serve::workload_cache) without the job layer
// depending on the serving layer. Implementations must be safe to call
// concurrently from executor workers and must return the same program for the
// same (profile, target_instructions, seed) that generate_workload would.
struct workload_source {
    virtual ~workload_source() = default;
    virtual std::shared_ptr<const generated_workload> workload_for(
        const workload_profile& profile, u64 target_instructions, u64 seed) = 0;
};

}  // namespace meek
