#include "workloads/generator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/bits.h"
#include "common/rng.h"
#include "isa/arch_state.h"

namespace meek {
namespace {

constexpr u32 k_block_ops = 256;  // static instructions per loop body

// Registers (see header).
constexpr areg_t r_count = 1, r_base = 3, r_mask = 4, r_rng = 5, r_cursor = 6,
                 r_addr = 7, r_acc = 13, r_scratch = 14, r_stride = 15;

struct emitter {
    program_builder& b;
    rng& r;
    const workload_profile& prof;
    u32 emitted = 0;
    u32 label_id = 0;
    double expected_skips = 0.0;  // dynamic instructions skipped by taken branches
    u32 rot = 0;                  // rotating temp selector (x8..x12)

    // Register roles: x8..x10 are scratch destinations (loads, int results),
    // x11..x13 are accumulators that are only ever read-modify-written. Every
    // loaded value folds into an accumulator immediately, so corrupted data
    // always survives to a store compare or the ERCP, while several short
    // chains keep OoO ILP realistic (BOOM-class IPC ~1-2 on compute code).
    areg_t temp() {
        rot = (rot + 1) % 3;
        return static_cast<areg_t>(8 + rot);
    }
    areg_t pick_acc() { return static_cast<areg_t>(11 + r.below(3)); }

    void emit(const instr& ins) {
        b.emit(ins);
        ++emitted;
    }

    // Effective address into x7. Regular accesses use immediate offsets off
    // the base (zero overhead); irregular ones hash the PRNG state.
    // Returns the overhead instruction count.
    i32 next_offset_regular() {
        // Working-set-theory locality: ~80% of accesses hit a hot subset
        // (cache-friendly temporal reuse), the rest walk the full footprint
        // sequentially with ~2 accesses per line (spatial locality). The
        // offsets fit the signed 32-bit immediate for every profile.
        const u64 span = std::min<u64>(prof.working_set_kb * 1024ull, 1ull << 30);
        const u64 lines = std::max<u64>(1, span / 64);
        const u64 hot_lines = std::max<u64>(1, std::min<u64>(lines, 24 * 1024 / 64));
        if (r.chance(0.8)) {
            hot_cursor = (hot_cursor + 1) % hot_lines;
            return static_cast<i32>(hot_cursor * 64 + r.below(56) / 8 * 8);
        }
        if (r.chance(0.5)) regular_cursor = (regular_cursor + 1) % lines;
        return static_cast<i32>(regular_cursor * 64 + r.below(56) / 8 * 8);
    }

    void emit_load() {
        if (r.uniform() < prof.irregular_frac) {
            // Pointer chase through the permutation-cycle table (x7 holds the
            // current node): irregular, serializing — mcf-style behaviour —
            // and the pointer itself is the loaded value, so corruption of
            // forwarded data diverges the walk and is caught immediately.
            emit(make_load(opcode::ld, r_addr, r_addr, 0));
            const areg_t acc = pick_acc();
            emit(make_r(opcode::xor_, acc, acc, r_addr));
            return;
        }
        const areg_t t = temp();
        emit(make_load(opcode::ld, t, r_base, next_offset_regular()));
        // Loaded values stay live: fold into an accumulator immediately
        // (read-modify-write, so earlier corruption is never erased).
        const areg_t acc = pick_acc();
        emit(make_r(opcode::xor_, acc, acc, t));
    }

    void emit_store() {
        const areg_t data = pick_acc();
        if (r.uniform() < prof.irregular_frac) {
            // Payload slot of the current chase node (+8; the next pointer at
            // +0 is never overwritten, keeping the cycle intact).
            emit(make_store(opcode::sd, data, r_addr, 8));
        } else {
            emit(make_store(opcode::sd, data, r_base, next_offset_regular()));
        }
    }

    void emit_branch() {
        const bool random = r.uniform() < prof.branch_random_frac;
        const std::string skip = "skip_" + std::to_string(label_id++);
        double taken_prob;
        if (random) {
            // Data-dependent: one PRNG bit — unpredictable.
            emit(make_i(opcode::andi, r_scratch, r_rng, 1));
            taken_prob = 0.5;
        } else {
            // Structured: periodic pattern TAGE learns.
            emit(make_i(opcode::andi, r_scratch, r_cursor, 31));
            taken_prob = 31.0 / 32.0;
        }
        b.emit_branch(opcode::bne, r_scratch, 0, skip);
        ++emitted;
        const u32 fillers = 1 + static_cast<u32>(r.below(2));
        for (u32 i = 0; i < fillers; ++i) {
            emit(make_i(opcode::addi, temp(), pick_acc(), static_cast<i32>(r.below(64))));
        }
        expected_skips += taken_prob * fillers;
        b.label(skip);
    }

    void emit_mul() {
        emit(make_r(opcode::mul, temp(), pick_acc(), r_rng));
    }

    void emit_div() {
        emit(make_i(opcode::ori, r_scratch, r_cursor, 1));
        emit(make_r(opcode::div, temp(), r_rng, r_scratch));
    }

    void emit_fp() {
        // Half the FP ops read only near-constant inputs (f7/f8), so chains
        // stay short and the OoO core extracts FP ILP like real kernels do.
        const auto fd = static_cast<areg_t>(1 + r.below(6));
        const auto fa = r.chance(0.5) ? static_cast<areg_t>(1 + r.below(6))
                                      : static_cast<areg_t>(7 + r.below(2));
        switch (r.below(4)) {
            case 0: emit(make_r4(opcode::fmadd_d, fd, fa, 7, 8)); break;
            case 1: emit(make_r(opcode::fadd_d, fd, fa, 8)); break;
            case 2: emit(make_r(opcode::fmul_d, fd, fa, 8)); break;
            default: emit(make_r(opcode::fsub_d, fd, fa, 7)); break;
        }
    }

    void emit_fp_div() {
        const auto fd = static_cast<areg_t>(1 + r.below(6));
        if (r.below(4) == 0) {
            emit(make_r(opcode::fsqrt_d, fd, fd, 0));
        } else {
            emit(make_r(opcode::fdiv_d, fd, fd, 7));
        }
    }

    void emit_csr() {
        // Non-repeatable read; x14 is write-before-read everywhere else, so
        // the value never influences the run (keeps baseline/MEEK dynamic
        // paths identical) while still exercising the CSR forwarding path.
        emit(make_csr(opcode::csrrs, r_scratch, csr_addr::uarch_entropy, 0));
    }

    void emit_int() {
        const areg_t t = temp();
        const areg_t a = pick_acc();
        const areg_t c = pick_acc();
        switch (r.below(5)) {
            case 0: emit(make_r(opcode::add, t, a, r_cursor)); break;
            case 1: emit(make_i(opcode::xori, t, a, static_cast<i32>(r.below(4096)))); break;
            case 2: emit(make_i(opcode::slli, t, a, 1 + static_cast<u32>(r.below(8)))); break;
            case 3: emit(make_r(opcode::or_, t, a, c)); break;
            default: emit(make_i(opcode::addi, t, t, 1)); break;
        }
    }

    u64 regular_cursor = 0;
    u64 hot_cursor = 0;
};

}  // namespace

generated_workload generate_workload(const workload_profile& prof,
                                     u64 target_instructions, u64 seed) {
    u64 name_hash = 1469598103934665603ull;
    for (const char c : prof.name) {
        name_hash = (name_hash ^ static_cast<u8>(c)) * 1099511628211ull;
    }
    rng r(seed ^ name_hash);
    program_builder b;

    const u64 ws_bytes = u64{prof.working_set_kb} * 1024;
    const u64 mask = (std::max<u64>(64, std::bit_floor(ws_bytes)) - 1) & ~u64{7};

    // --- Pointer-chase table (Sattolo single-cycle permutation) ---
    // 16-byte nodes: next pointer at +0, store payload at +8. Used by
    // irregular accesses; capped so test-suite generation stays cheap.
    const addr_t chase_base = k_default_data_base + 0x10000000;
    const u64 chase_nodes =
        std::max<u64>(16, std::min<u64>(ws_bytes, 4ull << 20) / 16);
    if (prof.irregular_frac > 0.0) {
        std::vector<u64> perm(chase_nodes);
        for (u64 i = 0; i < chase_nodes; ++i) perm[i] = i;
        for (u64 i = chase_nodes - 1; i > 0; --i) {
            const u64 j = r.below(i);  // Sattolo: j < i gives one full cycle
            std::swap(perm[i], perm[j]);
        }
        std::vector<u64> words(2 * chase_nodes, 0);
        for (u64 i = 0; i < chase_nodes; ++i) {
            words[2 * i] = chase_base + perm[i] * 16;
        }
        b.add_data_words(chase_base, words);
    }

    // --- Prologue ---
    b.emit_li(r_base, k_default_data_base);
    b.emit_li(r_addr, chase_base);
    b.emit_li(r_mask, mask);
    b.emit_li(r_rng, (seed ^ name_hash) | 1);
    b.emit_li(r_cursor, 0);
    for (areg_t v = 8; v <= 13; ++v) {
        b.emit_li(v, 0x1234567u * (v + 1));
    }
    b.emit_li(r_stride, 64);
    b.emit_lfd(8, r_scratch, 1.0000001);  // f8
    b.emit(make_r(opcode::fmv_d_x, 7, r_scratch, 0));  // f7 ~= same constant
    for (areg_t f = 1; f <= 6; ++f) {
        b.emit_lfd(f, r_scratch, 1.0 + 0.17 * f);
    }

    // --- Loop body ---
    emitter e{b, r, prof};

    // Per-block instruction budgets from the mix.
    const auto budget = [&](double frac) {
        return static_cast<u32>(std::llround(frac * k_block_ops));
    };
    u32 loads = budget(prof.load_frac);
    u32 stores = budget(prof.store_frac);
    u32 branches = budget(prof.branch_frac);
    u32 muls = budget(prof.mul_frac);
    u32 divs = budget(prof.div_frac);
    u32 fps = budget(prof.fp_frac);
    u32 fp_divs = budget(prof.fp_div_frac);
    u32 csrs = std::max<u32>(prof.csr_frac > 0 ? 1 : 0, budget(prof.csr_frac));

    // Iteration count placeholder: patched below once body size is known.
    const std::size_t li_count_index = b.emit(make_i(opcode::addi, r_count, 0, 1));
    b.label("outer");
    const u32 body_start = e.emitted;

    // Unroll into enough distinct blocks to reach the profile's static code
    // footprint (I-cache pressure); each block re-draws the full mix budget.
    const u32 num_blocks = std::max<u32>(
        1, prof.code_kb * 1024 / (k_instr_bytes * 5 * k_block_ops / 4));
    const u32 loads0 = loads, stores0 = stores, branches0 = branches,
              muls0 = muls, divs0 = divs, fps0 = fps, fp_divs0 = fp_divs,
              csrs0 = csrs;
    // Block 0 is the hot loop (runs every iteration); each cold block runs
    // once every `cold_period` iterations — the 90/10 execution profile real
    // large codes have, so the I-caches see pressure without thrashing.
    const u64 cold_period = std::bit_ceil(static_cast<u64>(std::max<u32>(2, num_blocks)));
    u32 hot_static = 0;
    u32 cold_static_total = 0;
    u32 guard_static = 0;
    for (u32 block = 0; block < num_blocks; ++block) {
    std::string skip_block;
    if (block > 0) {
        skip_block = "skip_block_" + std::to_string(block);
        b.emit(make_i(opcode::andi, r_scratch, r_cursor,
                      static_cast<i32>(cold_period - 1)));
        b.emit(make_i(opcode::xori, r_scratch, r_scratch, static_cast<i32>(block)));
        b.emit_branch(opcode::bne, r_scratch, 0, skip_block);
        e.emitted += 3;
        guard_static += 3;
    }
    const u32 block_start = e.emitted;
    loads = loads0;
    stores = stores0;
    branches = branches0;
    muls = muls0;
    divs = divs0;
    fps = fps0;
    fp_divs = fp_divs0;
    csrs = csrs0;
    // The CSR read is rare but must appear: emit it first.
    while (csrs > 0) {
        e.emit_csr();
        --csrs;
    }
    // Emit every budgeted operation (the block may exceed k_block_ops by the
    // addressing/fold overhead, which stands in for real address arithmetic).
    while (loads + stores + branches + muls + divs + fps + fp_divs > 0 &&
           e.emitted - block_start < 3 * k_block_ops) {
        // Weighted pick proportional to the remaining budgets.
        const u32 total = loads + stores + branches + muls + divs + fps + fp_divs + csrs;
        u32 pick = static_cast<u32>(r.below(total));
        if (pick < loads) {
            e.emit_load();
            --loads;
            continue;
        }
        pick -= loads;
        if (pick < stores) {
            e.emit_store();
            --stores;
            continue;
        }
        pick -= stores;
        if (pick < branches) {
            e.emit_branch();
            --branches;
            continue;
        }
        pick -= branches;
        if (pick < muls) {
            e.emit_mul();
            --muls;
            continue;
        }
        pick -= muls;
        if (pick < divs) {
            e.emit_div();
            --divs;
            continue;
        }
        pick -= divs;
        if (pick < fps) {
            e.emit_fp();
            --fps;
            continue;
        }
        pick -= fps;
        if (pick < fp_divs) {
            e.emit_fp_div();
            --fp_divs;
            continue;
        }
        e.emit_csr();
        --csrs;
    }
    while (e.emitted - block_start < k_block_ops) e.emit_int();
    if (block == 0) {
        hot_static = e.emitted - block_start;
    } else {
        cold_static_total += e.emitted - block_start;
        b.label(skip_block);
    }
    }

    // Cursor advance + loop control.
    e.emit(make_i(opcode::addi, r_cursor, r_cursor, 1));
    e.emit(make_i(opcode::addi, r_count, r_count, -1));
    b.emit_branch(opcode::bne, r_count, 0, "outer");
    ++e.emitted;
    b.emit(make_sys(opcode::halt));

    const u32 body_static = e.emitted - body_start;
    (void)body_static;
    // Dynamic length: hot block + guards every iteration, cold blocks
    // amortized over their period; intra-block skips roughly cancel.
    const double body_dynamic =
        static_cast<double>(hot_static) + static_cast<double>(guard_static) +
        static_cast<double>(cold_static_total) / static_cast<double>(cold_period) +
        3.0;
    const u64 iterations = std::max<u64>(
        1, static_cast<u64>(static_cast<double>(target_instructions) / body_dynamic));

    // Seed the first pages of the working set so early loads see varied data.
    std::vector<u64> init_words(512);
    for (u64& w : init_words) w = r.next();
    b.add_data_words(k_default_data_base, init_words);

    program prog = b.build();
    prog.text[li_count_index].imm = static_cast<i32>(
        std::min<u64>(iterations, std::numeric_limits<i32>::max()));

    generated_workload out;
    out.prog = std::move(prog);
    out.expected_dynamic_instructions =
        static_cast<u64>(body_dynamic * static_cast<double>(iterations));
    out.static_block_size = body_static;
    return out;
}

}  // namespace meek
