#include "workloads/profile.h"

#include <array>

#include "common/bits.h"

namespace meek {
namespace {

// Mixes follow the published characterizations of SPEC CPU2006 integer and
// PARSEC workloads (instruction-class breakdowns, working sets, branch
// behaviour); values are representative, not bit-exact.
const std::vector<workload_profile> k_spec = {
    // name        suite     ld    st    br    mul   div    fp    fdiv  csr    brnd  wsKB  irr
    {"perlbench", "SPEC06", 0.24, 0.12, 0.21, 0.01, 0.002, 0.00, 0.00, 0.001, 0.10, 512, 0.25, 300'000, true},
    {"bzip2", "SPEC06", 0.26, 0.09, 0.15, 0.01, 0.001, 0.00, 0.00, 0.001, 0.14, 2048, 0.20, 300'000, true},
    {"gcc", "SPEC06", 0.25, 0.13, 0.20, 0.01, 0.002, 0.00, 0.00, 0.001, 0.10, 4096, 0.30, 300'000, false},
    {"mcf", "SPEC06", 0.31, 0.09, 0.19, 0.00, 0.000, 0.00, 0.00, 0.001, 0.12, 8192, 0.75, 300'000, true},
    {"gobmk", "SPEC06", 0.25, 0.13, 0.21, 0.01, 0.001, 0.00, 0.00, 0.001, 0.16, 512, 0.25, 300'000, true},
    {"hmmer", "SPEC06", 0.28, 0.11, 0.08, 0.02, 0.000, 0.00, 0.00, 0.001, 0.02, 128, 0.05, 300'000, true},
    {"sjeng", "SPEC06", 0.21, 0.08, 0.21, 0.01, 0.001, 0.00, 0.00, 0.001, 0.16, 256, 0.30, 300'000, true},
    {"libquantum", "SPEC06", 0.20, 0.05, 0.27, 0.01, 0.000, 0.00, 0.00, 0.001, 0.06, 4096, 0.02, 300'000, true},
    {"h264ref", "SPEC06", 0.35, 0.11, 0.08, 0.03, 0.001, 0.00, 0.00, 0.001, 0.05, 1024, 0.10, 300'000, true},
    {"omnetpp", "SPEC06", 0.27, 0.17, 0.21, 0.01, 0.001, 0.00, 0.00, 0.001, 0.12, 8192, 0.55, 300'000, false},
    {"astar", "SPEC06", 0.27, 0.05, 0.17, 0.01, 0.001, 0.00, 0.00, 0.001, 0.14, 4096, 0.45, 300'000, true},
    {"xalancbmk", "SPEC06", 0.29, 0.09, 0.25, 0.00, 0.000, 0.00, 0.00, 0.001, 0.10, 8192, 0.40, 300'000, false},
};

const std::vector<workload_profile> k_parsec = {
    {"blackscholes", "PARSEC", 0.25, 0.09, 0.06, 0.01, 0.000, 0.30, 0.018, 0.001, 0.08, 256, 0.03, 300'000, true},
    {"bodytrack", "PARSEC", 0.28, 0.10, 0.12, 0.02, 0.001, 0.18, 0.005, 0.001, 0.08, 512, 0.08, 300'000, true},
    {"dedup", "PARSEC", 0.25, 0.15, 0.15, 0.03, 0.001, 0.00, 0.00, 0.001, 0.10, 4096, 0.25, 300'000, true},
    {"ferret", "PARSEC", 0.30, 0.10, 0.12, 0.02, 0.001, 0.15, 0.004, 0.001, 0.08, 2048, 0.12, 300'000, true},
    {"fluidanimate", "PARSEC", 0.28, 0.12, 0.08, 0.01, 0.000, 0.28, 0.008, 0.001, 0.05, 1024, 0.06, 300'000, true},
    {"streamcluster", "PARSEC", 0.30, 0.05, 0.10, 0.01, 0.000, 0.24, 0.002, 0.001, 0.04, 4096, 0.05, 300'000, true},
    {"freqmine", "PARSEC", 0.28, 0.12, 0.17, 0.01, 0.001, 0.02, 0.00, 0.001, 0.10, 1024, 0.15, 300'000, false},
    // swaptions: HJM Monte-Carlo swaption pricing — heavy FP division, the
    // little-core divider bottleneck the paper calls out (22% slowdown).
    {"swaptions", "PARSEC", 0.22, 0.08, 0.08, 0.02, 0.008, 0.28, 0.048, 0.001, 0.05, 64, 0.03, 300'000, true},
};

// Code footprints (KB of text) for the I-cache-heavy benchmarks.
const bool k_footprints_applied = [] {
    auto set = [](std::vector<workload_profile>& v, const char* name, u32 kb) {
        for (auto& p : v) {
            if (p.name == name) p.code_kb = kb;
        }
    };
    auto& spec = const_cast<std::vector<workload_profile>&>(k_spec);
    set(spec, "perlbench", 48);
    set(spec, "gcc", 64);
    set(spec, "gobmk", 40);
    set(spec, "sjeng", 24);
    set(spec, "h264ref", 24);
    set(spec, "omnetpp", 32);
    set(spec, "xalancbmk", 56);
    auto& parsec = const_cast<std::vector<workload_profile>&>(k_parsec);
    set(parsec, "bodytrack", 16);
    set(parsec, "ferret", 16);
    return true;
}();

}  // namespace

std::span<const workload_profile> spec06_profiles() { return k_spec; }
std::span<const workload_profile> parsec_profiles() { return k_parsec; }

const workload_profile* find_profile(const std::string& name) {
    for (const auto& p : k_spec) {
        if (p.name == name) return &p;
    }
    for (const auto& p : k_parsec) {
        if (p.name == name) return &p;
    }
    return nullptr;
}

u64 profile_fingerprint(const workload_profile& p) {
    fnv1a h;
    h.str(p.name);
    h.str(p.suite);
    h.f64(p.load_frac);
    h.f64(p.store_frac);
    h.f64(p.branch_frac);
    h.f64(p.mul_frac);
    h.f64(p.div_frac);
    h.f64(p.fp_frac);
    h.f64(p.fp_div_frac);
    h.f64(p.csr_frac);
    h.f64(p.branch_random_frac);
    h.u(p.working_set_kb);
    h.f64(p.irregular_frac);
    h.u(p.default_instructions);
    h.u(p.nzdc_supported ? 1 : 0);
    h.u(p.code_kb);
    return h.h;
}

}  // namespace meek
