// Parallel experiment executor: the thin façade that gives simulation code a
// batch-of-jobs API over the shared work-stealing scheduler (sched::pool)
// while keeping campaign results bit-identical at any thread count.
//
// Determinism contract:
//   * every job in a batch gets a `job_context` whose `stream_seed` is a pure
//     function of (batch seed, job index) — never of scheduling order;
//   * batch results are returned in submission-index order, so reductions see
//     the same sequence whether one worker or sixteen ran the jobs;
//   * jobs share no mutable state — each builds its own SoC, accumulates into
//     its own result struct, and the merge happens after the join.
//
// Scheduling (wall-clock only, never results): a batch with cost hints is
// placed across the workers' deques with sched::balanced_assignment — each
// worker's share pushed cheapest-first so its LIFO pop order runs its own
// longest job first — and workers that drain early steal FIFO from the
// others, which is what corrects a hint that lied. `scheduler_stats()`
// exposes the per-worker executed/stolen/busy counters next to the per-job
// timing summary.
//
// A job that throws does not poison the pool: the exception is captured in
// the job's future and rethrown to the caller at join time; workers keep
// draining the queues.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <numeric>
#include <span>
#include <type_traits>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/placement.h"
#include "sched/pool.h"

namespace meek::sim {

// Deterministic per-job context. `stream_seed` seeds the job's private rng
// stream; two jobs in a batch never share a stream.
struct job_context {
    std::size_t index = 0;  // submission position within the batch
    u64 stream_seed = 0;    // derive_stream_seed(batch seed, index)
};

// Aggregate wall-time of completed indexed jobs: the shard-skew view. A
// campaign whose max is many times its mean is dominated by one long shard
// and wants smaller shards (or stealing), not more threads.
struct executor_timing {
    std::size_t jobs = 0;
    double min_ms = 0.0;
    double mean_ms = 0.0;
    double max_ms = 0.0;
    double total_ms = 0.0;
};

// splitmix64 mix of (base_seed, stream_index): statistically independent
// streams for adjacent indices, stable across platforms and thread counts.
u64 derive_stream_seed(u64 base_seed, u64 stream_index);

// Worker-count resolution: `requested` if nonzero, else the MEEK_THREADS
// environment variable if set and positive, else hardware_concurrency
// (floored at 1).
u32 resolve_thread_count(u32 requested = 0);

class executor {
public:
    // `num_threads == 0` resolves via MEEK_THREADS / hardware_concurrency.
    explicit executor(u32 num_threads = 0);

    executor(const executor&) = delete;
    executor& operator=(const executor&) = delete;

    u32 num_threads() const { return pool_.size(); }

    // Per-job wall-time summary over every indexed job completed since
    // construction (or the last reset). Thread-safe. Derived from the run-time
    // latency histogram below, so the legacy min/mean/max view and the
    // percentile view can never disagree: count and sum are exact, min/max
    // are the exact extremes.
    executor_timing timing() const;
    void reset_timing();

    // Per-job latency distributions (nanoseconds): time from post() to the
    // job body starting (queue wait — scheduling delay, the saturation
    // signal) and the body's own wall time. Snapshots are cheap copies.
    obs::log_histogram queue_wait_histogram() const { return queue_wait_ns_.snapshot(); }
    obs::log_histogram run_time_histogram() const { return run_ns_.snapshot(); }

    // Re-plumb the pool's counters and latency histograms into a metrics
    // snapshot under `prefix` ("pool.queue_wait_ns", "pool.executed", ...).
    void contribute_metrics(obs::metrics_snapshot& snap,
                            std::string_view prefix = "pool") const;

    // The scheduler's own per-worker counters: tasks executed, tasks stolen,
    // steal probes, inject-ring traffic, busy wall time. Steals > 0 on a
    // skewed batch is the work-stealing layer doing its job. The snapshot is
    // wait-free (relaxed atomics) — cheap enough to read between batches.
    sched::pool_stats scheduler_stats() const { return pool_.stats(); }
    void reset_scheduler_stats() { pool_.reset_stats(); }

    // Which queue backend the pool runs (MEEK_SCHED=mutex|lockfree).
    sched::queue_backend scheduler_backend() const { return pool_.backend(); }

    // Submit one job; the future holds the result or the job's exception.
    // Placement is round-robin — single submissions carry no cost hint.
    template <class Fn>
    auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>&>> {
        using result_t = std::invoke_result_t<std::decay_t<Fn>&>;
        auto task = std::make_shared<std::packaged_task<result_t()>>(
            std::forward<Fn>(fn));
        std::future<result_t> fut = task->get_future();
        pool_.post(next_home_.fetch_add(1, std::memory_order_relaxed),
                   [task] { (*task)(); });
        return fut;
    }

    // Submit one indexed job with a completion hook instead of a future: runs
    // `fn(ctx)` with ctx = {index, derive_stream_seed(base_seed, index)} and
    // then invokes `done(ctx, result, error)` ON THE WORKER THREAD — error is
    // a null exception_ptr on success, and `result` is default-constructed
    // when the body threw. This is the streaming serve path's primitive: a
    // completed job can be emitted the moment it finishes, with no join
    // barrier holding finished rows hostage to slower ones.
    //
    // The hook runs outside any executor lock, but on a pool worker: it must
    // be quick and must not block on work that itself needs this pool. The
    // caller owns lifetime — everything `done` captures must outlive the job
    // (callers typically count outstanding jobs and wait on a condition
    // variable). Seeds and indices keep the run_indexed determinism contract;
    // only completion *notification* order depends on scheduling.
    template <class Fn, class Done>
    void submit_indexed(std::size_t index, u64 base_seed, Fn fn, Done done,
                        obs::trace_context trace = {}) {
        using result_t = std::invoke_result_t<Fn&, const job_context&>;
        static_assert(std::is_default_constructible_v<result_t>,
                      "submit_indexed needs a default-constructible result to "
                      "deliver alongside an exception");
        const job_context ctx{index, derive_stream_seed(base_seed, index)};
        obs::job_span_recorder spans(trace, index);
        const auto posted = std::chrono::steady_clock::now();
        auto body = [this, fn = std::move(fn), done = std::move(done), ctx, posted,
                     spans]() mutable {
            spans.started();
            const obs::scoped_trace ambient(spans.context());
            const auto start = std::chrono::steady_clock::now();
            result_t result{};
            std::exception_ptr error;
            try {
                result = fn(ctx);
            } catch (...) {
                error = std::current_exception();
            }
            note_job(posted, start, std::chrono::steady_clock::now());
            spans.finished();
            done(ctx, std::move(result), error);
        };
        // sched::task is std::function — copyable — so the (possibly
        // capture-heavy) body rides behind a shared_ptr like run_indexed's
        // packaged_task does.
        auto task = std::make_shared<decltype(body)>(std::move(body));
        pool_.post(next_home_.fetch_add(1, std::memory_order_relaxed),
                   [task] { (*task)(); });
    }

    // Run `count` indexed jobs (fn: const job_context& -> R) and return the
    // results ordered by index. Every job in the batch is drained before this
    // returns — including when one throws — so by-reference captures of
    // caller locals can never outlive the call; the lowest-index exception is
    // rethrown after the drain.
    //
    // `cost_hints` (optional; size must equal `count` when nonempty) drives
    // cost-balanced placement across the worker deques; without hints the
    // batch is dealt round-robin. Placement and stealing reorder *scheduling
    // only*: stream seeds and result order are functions of the job index, so
    // hinted and unhinted batches are bit-identical.
    //
    // `traces` (optional) carries one parent trace context per job: job i
    // records a "job" span (children "queue_wait"/"run") under traces[i] and
    // runs its body with that span as the thread's ambient trace, so logs
    // and nested spans inside the job correlate. Contexts never influence
    // scheduling; an empty/zero context is free.
    template <class Fn>
    auto run_indexed(std::size_t count, u64 base_seed, Fn fn,
                     std::span<const double> cost_hints = {},
                     std::span<const obs::trace_context> traces = {})
        -> std::vector<std::invoke_result_t<Fn&, const job_context&>> {
        using result_t = std::invoke_result_t<Fn&, const job_context&>;
        std::vector<std::future<result_t>> futures(count);
        const batch_plan plan = plan_batch(count, cost_hints);
        for (const std::size_t i : plan.push_order) {
            const job_context ctx{i, derive_stream_seed(base_seed, i)};
            // Each job's body is wall-clock timed into the pool's latency
            // histograms (queue wait = post to start, run = the body itself)
            // — purely diagnostic, never fed back into results, so
            // determinism holds.
            obs::job_span_recorder spans(
                i < traces.size() ? traces[i] : obs::trace_context{}, i);
            const auto posted = std::chrono::steady_clock::now();
            auto task = std::make_shared<std::packaged_task<result_t()>>(
                [this, fn, ctx, posted, spans]() mutable {
                    spans.started();
                    const obs::scoped_trace ambient(spans.context());
                    const auto start = std::chrono::steady_clock::now();
                    result_t result = fn(ctx);
                    note_job(posted, start, std::chrono::steady_clock::now());
                    spans.finished();
                    return result;
                });
            futures[i] = task->get_future();
            pool_.post(plan.homes[i], [task] { (*task)(); });
        }
        std::vector<result_t> results;
        results.reserve(count);
        std::exception_ptr first_error;
        for (auto& f : futures) {
            try {
                results.push_back(f.get());
            } catch (...) {
                if (!first_error) first_error = std::current_exception();
            }
        }
        if (first_error) std::rethrow_exception(first_error);
        return results;
    }

    // Map fn (const Item&, const job_context& -> R) over `items`, preserving
    // item order in the result vector.
    template <class Item, class Fn>
    auto map(const std::vector<Item>& items, u64 base_seed, Fn fn)
        -> std::vector<std::invoke_result_t<Fn&, const Item&, const job_context&>> {
        return run_indexed(items.size(), base_seed, [&items, fn](const job_context& ctx) {
            return fn(items[ctx.index], ctx);
        });
    }

    // map with a per-item cost hint (hint_of: const Item& -> double); the
    // batch is cost-balanced across the workers, results stay in item order.
    // `traces` as in run_indexed: one parent context per item.
    template <class Item, class Fn, class HintOf>
    auto map(const std::vector<Item>& items, u64 base_seed, Fn fn, HintOf hint_of,
             std::span<const obs::trace_context> traces = {})
        -> std::vector<std::invoke_result_t<Fn&, const Item&, const job_context&>> {
        std::vector<double> hints;
        hints.reserve(items.size());
        for (const Item& item : items) hints.push_back(hint_of(item));
        return run_indexed(
            items.size(), base_seed,
            [&items, fn](const job_context& ctx) { return fn(items[ctx.index], ctx); },
            hints, traces);
    }

private:
    // Where each job of a batch goes and in what order it is pushed.
    struct batch_plan {
        std::vector<std::size_t> homes;       // job index -> worker deque
        std::vector<std::size_t> push_order;  // post() order over job indices
    };
    batch_plan plan_batch(std::size_t count, std::span<const double> cost_hints) const;

    void note_job(std::chrono::steady_clock::time_point posted,
                  std::chrono::steady_clock::time_point started,
                  std::chrono::steady_clock::time_point finished);

    std::atomic<u64> next_home_{0};

    obs::atomic_log_histogram queue_wait_ns_;
    obs::atomic_log_histogram run_ns_;

    // Declared last on purpose: the pool's destructor drains still-queued
    // jobs, whose bodies call note_job — the histograms above must outlive
    // it (members destruct in reverse declaration order).
    sched::pool pool_;
};

}  // namespace meek::sim
