// Parallel experiment executor: a std::thread pool that fans independent
// simulation jobs out across workers while keeping campaign results
// bit-identical at any thread count.
//
// Determinism contract:
//   * every job in a batch gets a `job_context` whose `stream_seed` is a pure
//     function of (batch seed, job index) — never of scheduling order;
//   * batch results are returned in submission-index order, so reductions see
//     the same sequence whether one worker or sixteen ran the jobs;
//   * jobs share no mutable state — each builds its own SoC, accumulates into
//     its own result struct, and the merge happens after the join.
//
// A job that throws does not poison the pool: the exception is captured in
// the job's future and rethrown to the caller at join time; workers keep
// draining the queue.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <numeric>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace meek::sim {

// Deterministic per-job context. `stream_seed` seeds the job's private rng
// stream; two jobs in a batch never share a stream.
struct job_context {
    std::size_t index = 0;  // submission position within the batch
    u64 stream_seed = 0;    // derive_stream_seed(batch seed, index)
};

// Aggregate wall-time of completed indexed jobs: the shard-skew view. A
// campaign whose max is many times its mean is dominated by one long shard
// and wants smaller shards (or stealing), not more threads.
struct executor_timing {
    std::size_t jobs = 0;
    double min_ms = 0.0;
    double mean_ms = 0.0;
    double max_ms = 0.0;
    double total_ms = 0.0;
};

// splitmix64 mix of (base_seed, stream_index): statistically independent
// streams for adjacent indices, stable across platforms and thread counts.
u64 derive_stream_seed(u64 base_seed, u64 stream_index);

// Worker-count resolution: `requested` if nonzero, else the MEEK_THREADS
// environment variable if set and positive, else hardware_concurrency
// (floored at 1).
u32 resolve_thread_count(u32 requested = 0);

class executor {
public:
    // `num_threads == 0` resolves via MEEK_THREADS / hardware_concurrency.
    explicit executor(u32 num_threads = 0);
    ~executor();

    executor(const executor&) = delete;
    executor& operator=(const executor&) = delete;

    u32 num_threads() const { return static_cast<u32>(workers_.size()); }

    // Per-job wall-time summary over every indexed job completed since
    // construction (or the last reset). Thread-safe.
    executor_timing timing() const;
    void reset_timing();

    // Submit one job; the future holds the result or the job's exception.
    template <class Fn>
    auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>&>> {
        using result_t = std::invoke_result_t<std::decay_t<Fn>&>;
        auto task = std::make_shared<std::packaged_task<result_t()>>(
            std::forward<Fn>(fn));
        std::future<result_t> fut = task->get_future();
        enqueue([task] { (*task)(); });
        return fut;
    }

    // Run `count` indexed jobs (fn: const job_context& -> R) and return the
    // results ordered by index. Every job in the batch is drained before this
    // returns — including when one throws — so by-reference captures of
    // caller locals can never outlive the call; the lowest-index exception is
    // rethrown after the drain.
    //
    // `cost_hints` (optional; size must equal `count` when nonempty) sorts
    // submission order longest-hint-first so a batch of unequal jobs does not
    // end on one straggler the other workers idle behind. Hints reorder
    // *scheduling only*: stream seeds and result order are functions of the
    // job index, so hinted and unhinted batches are bit-identical.
    template <class Fn>
    auto run_indexed(std::size_t count, u64 base_seed, Fn fn,
                     std::span<const double> cost_hints = {})
        -> std::vector<std::invoke_result_t<Fn&, const job_context&>> {
        using result_t = std::invoke_result_t<Fn&, const job_context&>;
        std::vector<std::size_t> order(count);
        std::iota(order.begin(), order.end(), std::size_t{0});
        if (cost_hints.size() == count) {
            // Stable: equal-cost jobs keep submission-index order.
            std::stable_sort(order.begin(), order.end(),
                             [cost_hints](std::size_t a, std::size_t b) {
                                 return cost_hints[a] > cost_hints[b];
                             });
        }
        std::vector<std::future<result_t>> futures(count);
        for (const std::size_t i : order) {
            const job_context ctx{i, derive_stream_seed(base_seed, i)};
            // Each job's body is wall-clock timed into the pool's summary —
            // purely diagnostic, never fed back into results, so determinism
            // holds.
            futures[i] = submit([this, fn, ctx] {
                const auto start = std::chrono::steady_clock::now();
                result_t result = fn(ctx);
                note_job_ms(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count());
                return result;
            });
        }
        std::vector<result_t> results;
        results.reserve(count);
        std::exception_ptr first_error;
        for (auto& f : futures) {
            try {
                results.push_back(f.get());
            } catch (...) {
                if (!first_error) first_error = std::current_exception();
            }
        }
        if (first_error) std::rethrow_exception(first_error);
        return results;
    }

    // Map fn (const Item&, const job_context& -> R) over `items`, preserving
    // item order in the result vector.
    template <class Item, class Fn>
    auto map(const std::vector<Item>& items, u64 base_seed, Fn fn)
        -> std::vector<std::invoke_result_t<Fn&, const Item&, const job_context&>> {
        return run_indexed(items.size(), base_seed, [&items, fn](const job_context& ctx) {
            return fn(items[ctx.index], ctx);
        });
    }

    // map with a per-item cost hint (hint_of: const Item& -> double); the
    // batch is submitted longest-first, results stay in item order.
    template <class Item, class Fn, class HintOf>
    auto map(const std::vector<Item>& items, u64 base_seed, Fn fn, HintOf hint_of)
        -> std::vector<std::invoke_result_t<Fn&, const Item&, const job_context&>> {
        std::vector<double> hints;
        hints.reserve(items.size());
        for (const Item& item : items) hints.push_back(hint_of(item));
        return run_indexed(
            items.size(), base_seed,
            [&items, fn](const job_context& ctx) { return fn(items[ctx.index], ctx); },
            hints);
    }

private:
    void enqueue(std::function<void()> task);
    void worker_loop();
    void note_job_ms(double ms);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;

    mutable std::mutex timing_mutex_;
    running_stat job_ms_;
    double total_job_ms_ = 0.0;
};

}  // namespace meek::sim
