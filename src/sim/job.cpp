#include "sim/job.h"

#include "area/area_model.h"
#include "common/bits.h"
#include "baselines/nzdc.h"
#include "bigcore/ooo_core.h"
#include "mem/functional_memory.h"
#include "workloads/generator.h"

namespace meek::sim {
namespace {

run_outcome run_big_core(const big_core_config& cfg, const program& prog) {
    functional_memory memory;
    ooo_core core(cfg, memory);
    core.load_program(prog);
    const run_result r = core.run(run_limits{}, nullptr);
    run_outcome out;
    out.cycles = r.cycles;
    out.instructions = r.instructions;
    out.ipc = core.stats().ipc();
    return out;
}

run_outcome run_meek(const soc_config& cfg, const program& prog) {
    meek_soc soc(cfg);
    soc.load_program(prog);
    const meek_run_result r = soc.run();
    run_outcome out;
    out.cycles = r.big.cycles;
    out.instructions = r.big.instructions;
    out.ipc = soc.big_core().stats().ipc();
    out.verified_ok = r.verified_ok;
    out.stats = r.soc;
    for (u32 i = 0; i < cfg.num_little_cores; ++i) {
        const little_core_stats& s = soc.little(i).stats();
        out.replayed_instructions += s.replayed_instructions;
        const cycle_t waits = s.stall_lsl_empty + s.stall_watermark + s.stall_srcp;
        out.checker_compute_cycles += s.busy_cycles > waits ? s.busy_cycles - waits : 0;
    }
    return out;
}

}  // namespace

run_outcome execute(const run_spec& spec) {
    // Pull the workload through the spec's provider when one is attached
    // (shared cache), otherwise generate a private copy.
    std::shared_ptr<const generated_workload> shared_wl;
    std::optional<generated_workload> local_wl;
    if (spec.workloads != nullptr) {
        shared_wl = spec.workloads->workload_for(spec.workload, spec.instructions,
                                                 spec.workload_seed);
    } else {
        local_wl = generate_workload(spec.workload, spec.instructions,
                                     spec.workload_seed);
    }
    const generated_workload& wl = shared_wl ? *shared_wl : *local_wl;
    const soc_config cfg = spec.soc_override ? *spec.soc_override : spec.sc.soc();

    run_outcome out;
    switch (spec.sc.system) {
        case system_kind::vanilla:
            out = run_big_core(cfg.big, wl.prog);
            break;
        case system_kind::meek:
            out = run_meek(cfg, wl.prog);
            break;
        case system_kind::ea_lockstep: {
            const area_model areas;
            out = run_big_core(areas.ea_lockstep_config(cfg), wl.prog);
            break;
        }
        case system_kind::nzdc: {
            if (!spec.workload.nzdc_supported) {
                out.skipped = true;
                break;
            }
            const nzdc_program transformed = transform_nzdc(wl.prog);
            out = run_big_core(cfg.big, transformed.prog);
            break;
        }
    }
    out.scenario = spec.sc.name;
    out.workload = spec.workload.name;
    return out;
}

std::vector<run_outcome> execute_all(executor& ex, const std::vector<run_spec>& specs) {
    return ex.map(
        specs, /*base_seed=*/0,
        [](const run_spec& spec, const job_context&) { return execute(spec); },
        [](const run_spec& spec) { return cost_hint(spec); });
}

u64 run_spec_fingerprint(const run_spec& spec) {
    const soc_config cfg = spec.soc_override ? *spec.soc_override : spec.sc.soc();
    fnv1a h;
    h.u(static_cast<u64>(spec.sc.system));
    h.u(soc_config_fingerprint(cfg));
    h.u(profile_fingerprint(spec.workload));
    h.u(spec.instructions);
    h.u(spec.workload_seed);
    return h.h;
}

double cost_hint(const run_spec& spec) {
    const double base = static_cast<double>(spec.instructions);
    if (spec.sc.system != system_kind::meek) return base;
    const soc_config cfg = spec.soc_override ? *spec.soc_override : spec.sc.soc();
    // A MEEK job also steps the fabric and every checker core.
    return base * (1.5 + 0.25 * cfg.num_little_cores);
}

}  // namespace meek::sim
