#include "sim/executor.h"

#include <cstdlib>
#include <thread>

namespace meek::sim {

u64 derive_stream_seed(u64 base_seed, u64 stream_index) {
    // splitmix64 over the pair; the golden-ratio stride separates adjacent
    // indices far enough that xoshiro's splitmix seeding stays uncorrelated.
    u64 z = base_seed + (stream_index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

u32 resolve_thread_count(u32 requested) {
    if (requested > 0) return requested;
    if (const char* env = std::getenv("MEEK_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) return static_cast<u32>(v);
    }
    const u32 hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

executor::executor(u32 num_threads) : pool_(resolve_thread_count(num_threads)) {}

executor_timing executor::timing() const {
    std::lock_guard<std::mutex> lock(timing_mutex_);
    executor_timing t;
    t.jobs = job_ms_.count();
    t.min_ms = job_ms_.min();
    t.mean_ms = job_ms_.mean();
    t.max_ms = job_ms_.max();
    t.total_ms = total_job_ms_;
    return t;
}

void executor::reset_timing() {
    std::lock_guard<std::mutex> lock(timing_mutex_);
    job_ms_ = running_stat{};
    total_job_ms_ = 0.0;
}

void executor::note_job_ms(double ms) {
    std::lock_guard<std::mutex> lock(timing_mutex_);
    job_ms_.add(ms);
    total_job_ms_ += ms;
}

executor::batch_plan executor::plan_batch(std::size_t count,
                                          std::span<const double> cost_hints) const {
    batch_plan plan;
    plan.push_order.resize(count);
    std::iota(plan.push_order.begin(), plan.push_order.end(), std::size_t{0});

    if (cost_hints.size() != count) {
        // No (usable) hints: deal the batch round-robin; stealing alone
        // levels whatever skew the bodies turn out to have.
        plan.homes.resize(count);
        for (std::size_t i = 0; i < count; ++i) plan.homes[i] = i % pool_.size();
        return plan;
    }

    plan.homes = sched::balanced_assignment(cost_hints, pool_.size());
    // Push each worker's share cheapest-first: the owner pops LIFO, so it
    // starts on its own longest job (no straggler finishing last), while a
    // thief's FIFO steal takes the cheapest task the owner is furthest from —
    // the least disruptive thing to migrate.
    std::stable_sort(plan.push_order.begin(), plan.push_order.end(),
                     [&plan, cost_hints](std::size_t a, std::size_t b) {
                         if (plan.homes[a] != plan.homes[b]) {
                             return plan.homes[a] < plan.homes[b];
                         }
                         return cost_hints[a] < cost_hints[b];
                     });
    return plan;
}

}  // namespace meek::sim
