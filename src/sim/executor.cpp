#include "sim/executor.h"

#include <cstdlib>
#include <thread>

namespace meek::sim {

u64 derive_stream_seed(u64 base_seed, u64 stream_index) {
    // splitmix64 over the pair; the golden-ratio stride separates adjacent
    // indices far enough that xoshiro's splitmix seeding stays uncorrelated.
    u64 z = base_seed + (stream_index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

u32 resolve_thread_count(u32 requested) {
    if (requested > 0) return requested;
    if (const char* env = std::getenv("MEEK_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) return static_cast<u32>(v);
    }
    const u32 hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

executor::executor(u32 num_threads) : pool_(resolve_thread_count(num_threads)) {}

executor_timing executor::timing() const {
    // One code path for the legacy summary and the percentile view: both are
    // projections of the run-time histogram. count/sum/min/max are exact
    // (not bucket representatives), so min <= mean <= max and total >= max
    // hold exactly as they did for the old mutexed accumulator.
    const obs::log_histogram h = run_ns_.snapshot();
    executor_timing t;
    t.jobs = h.count();
    t.min_ms = static_cast<double>(h.min()) / 1e6;
    t.mean_ms = h.mean() / 1e6;
    t.max_ms = static_cast<double>(h.max()) / 1e6;
    t.total_ms = static_cast<double>(h.sum()) / 1e6;
    return t;
}

void executor::reset_timing() {
    run_ns_.reset();
    queue_wait_ns_.reset();
}

void executor::note_job(std::chrono::steady_clock::time_point posted,
                        std::chrono::steady_clock::time_point started,
                        std::chrono::steady_clock::time_point finished) {
    const auto ns = [](auto from, auto to) -> u64 {
        const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(to - from);
        return d.count() > 0 ? static_cast<u64>(d.count()) : 0;
    };
    queue_wait_ns_.record(ns(posted, started));
    run_ns_.record(ns(started, finished));
}

void executor::contribute_metrics(obs::metrics_snapshot& snap,
                                  std::string_view prefix) const {
    const std::string p(prefix);
    snap.add_histogram(p + ".queue_wait_ns", queue_wait_ns_.snapshot());
    snap.add_histogram(p + ".run_ns", run_ns_.snapshot());
    const sched::pool_stats s = pool_.stats();
    snap.set_counter(p + ".executed", s.executed());
    snap.set_counter(p + ".steals", s.steals());
    snap.set_counter(p + ".steal_attempts", s.steal_attempts());
    snap.set_counter(p + ".posts_via_ring", s.posts_via_ring());
    snap.set_counter(p + ".ring_full_posts", s.ring_full_posts());
    snap.set_gauge(p + ".threads", pool_.size());
    snap.set_gauge(p + ".busy_us", static_cast<u64>(s.busy_ms() * 1000.0));
}

executor::batch_plan executor::plan_batch(std::size_t count,
                                          std::span<const double> cost_hints) const {
    batch_plan plan;
    plan.push_order.resize(count);
    std::iota(plan.push_order.begin(), plan.push_order.end(), std::size_t{0});

    if (cost_hints.size() != count) {
        // No (usable) hints: deal the batch round-robin; stealing alone
        // levels whatever skew the bodies turn out to have.
        plan.homes.resize(count);
        for (std::size_t i = 0; i < count; ++i) plan.homes[i] = i % pool_.size();
        return plan;
    }

    plan.homes = sched::balanced_assignment(cost_hints, pool_.size());
    // Push each worker's share cheapest-first: the owner pops LIFO, so it
    // starts on its own longest job (no straggler finishing last), while a
    // thief's FIFO steal takes the cheapest task the owner is furthest from —
    // the least disruptive thing to migrate.
    std::stable_sort(plan.push_order.begin(), plan.push_order.end(),
                     [&plan, cost_hints](std::size_t a, std::size_t b) {
                         if (plan.homes[a] != plan.homes[b]) {
                             return plan.homes[a] < plan.homes[b];
                         }
                         return cost_hints[a] < cost_hints[b];
                     });
    return plan;
}

}  // namespace meek::sim
