#include "sim/executor.h"

#include <cstdlib>

namespace meek::sim {

u64 derive_stream_seed(u64 base_seed, u64 stream_index) {
    // splitmix64 over the pair; the golden-ratio stride separates adjacent
    // indices far enough that xoshiro's splitmix seeding stays uncorrelated.
    u64 z = base_seed + (stream_index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

u32 resolve_thread_count(u32 requested) {
    if (requested > 0) return requested;
    if (const char* env = std::getenv("MEEK_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) return static_cast<u32>(v);
    }
    const u32 hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

executor::executor(u32 num_threads) {
    const u32 n = resolve_thread_count(num_threads);
    workers_.reserve(n);
    for (u32 i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

executor::~executor() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
}

executor_timing executor::timing() const {
    std::lock_guard<std::mutex> lock(timing_mutex_);
    executor_timing t;
    t.jobs = job_ms_.count();
    t.min_ms = job_ms_.min();
    t.mean_ms = job_ms_.mean();
    t.max_ms = job_ms_.max();
    t.total_ms = total_job_ms_;
    return t;
}

void executor::reset_timing() {
    std::lock_guard<std::mutex> lock(timing_mutex_);
    job_ms_ = running_stat{};
    total_job_ms_ = 0.0;
}

void executor::note_job_ms(double ms) {
    std::lock_guard<std::mutex> lock(timing_mutex_);
    job_ms_.add(ms);
    total_job_ms_ += ms;
}

void executor::enqueue(std::function<void()> task) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void executor::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and fully drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // packaged_task routes any exception into the job's future; nothing
        // escapes into the worker loop.
        task();
    }
}

}  // namespace meek::sim
