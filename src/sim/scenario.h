// Scenario registry: every system configuration the paper's figures evaluate,
// named as data instead of per-bench copy-paste.
//
// A scenario identifies one *system* under test — the vanilla big core
// (baseline), MEEK with N little cores on either fabric and either
// little-core tuning, the EA-LockStep equal-area scaled core, or the nZDC
// compiler transform — and can materialize the full `soc_config` for it.
// Binding a scenario to a workload yields a `run_spec` (see sim/job.h),
// which is the unit the executor fans out.
//
// Naming scheme (round-trips through find_scenario):
//   vanilla | ea-lockstep | nzdc | meek/<f2|axi>/<opt|def>/<cores>
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "common/config.h"

namespace meek::sim {

enum class system_kind : u8 { vanilla, meek, ea_lockstep, nzdc };

const char* system_kind_name(system_kind k);

struct scenario {
    std::string name;
    system_kind system = system_kind::meek;

    // MEEK-only knobs (ignored for the other systems).
    u32 little_cores = 4;
    fabric_kind fabric = fabric_kind::f2;
    little_core_tuning tuning = little_core_tuning::optimized;

    // Table II defaults with this scenario's knobs applied. For vanilla /
    // ea-lockstep / nzdc only `.big` is meaningful; the EA-LockStep big-core
    // scaling itself is applied by the job layer through the area model so
    // the registry stays free of area-model state.
    soc_config soc() const;
};

// Canonical constructors; `name` follows the registry scheme above so that
// find_scenario(meek_scenario(...).name) round-trips.
scenario vanilla_scenario();
scenario ea_lockstep_scenario();
scenario nzdc_scenario();
scenario meek_scenario(u32 little_cores, fabric_kind fabric = fabric_kind::f2,
                       little_core_tuning tuning = little_core_tuning::optimized);

// The full registry: vanilla, ea-lockstep, nzdc, and MEEK over
// cores {2,4,6} x fabric {f2,axi} x tuning {opt,def}.
std::span<const scenario> all_scenarios();

// Lookup by registry name; nullptr when unknown.
const scenario* find_scenario(std::string_view name);

}  // namespace meek::sim
