#include "sim/scenario.h"

#include <vector>

namespace meek::sim {

const char* system_kind_name(system_kind k) {
    switch (k) {
        case system_kind::vanilla: return "vanilla";
        case system_kind::meek: return "meek";
        case system_kind::ea_lockstep: return "ea-lockstep";
        case system_kind::nzdc: return "nzdc";
    }
    return "?";
}

soc_config scenario::soc() const {
    soc_config cfg;
    if (system == system_kind::meek) {
        cfg.num_little_cores = little_cores;
        cfg.fabric.kind = fabric;
        cfg.little.tuning = tuning;
    }
    return cfg;
}

scenario vanilla_scenario() {
    scenario s;
    s.name = "vanilla";
    s.system = system_kind::vanilla;
    return s;
}

scenario ea_lockstep_scenario() {
    scenario s;
    s.name = "ea-lockstep";
    s.system = system_kind::ea_lockstep;
    return s;
}

scenario nzdc_scenario() {
    scenario s;
    s.name = "nzdc";
    s.system = system_kind::nzdc;
    return s;
}

scenario meek_scenario(u32 little_cores, fabric_kind fabric,
                       little_core_tuning tuning) {
    scenario s;
    s.system = system_kind::meek;
    s.little_cores = little_cores;
    s.fabric = fabric;
    s.tuning = tuning;
    s.name = std::string("meek/") +
             (fabric == fabric_kind::f2 ? "f2" : "axi") + "/" +
             (tuning == little_core_tuning::optimized ? "opt" : "def") + "/" +
             std::to_string(little_cores);
    return s;
}

std::span<const scenario> all_scenarios() {
    static const std::vector<scenario> registry = [] {
        std::vector<scenario> r;
        r.push_back(vanilla_scenario());
        r.push_back(ea_lockstep_scenario());
        r.push_back(nzdc_scenario());
        for (const fabric_kind fabric : {fabric_kind::f2, fabric_kind::axi_interconnect}) {
            for (const little_core_tuning tuning :
                 {little_core_tuning::optimized, little_core_tuning::default_rocket}) {
                for (const u32 cores : {2u, 4u, 6u}) {
                    r.push_back(meek_scenario(cores, fabric, tuning));
                }
            }
        }
        return r;
    }();
    return registry;
}

const scenario* find_scenario(std::string_view name) {
    for (const scenario& s : all_scenarios()) {
        if (s.name == name) return &s;
    }
    return nullptr;
}

}  // namespace meek::sim
