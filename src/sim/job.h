// The sim_job abstraction: bind a scenario to a workload, build the system,
// run it, and reduce the run to a plain result struct. Jobs are pure
// functions of their spec — no shared mutable state — which is what lets the
// executor fan them out across threads with deterministic results.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "meek/soc.h"
#include "sim/executor.h"
#include "sim/scenario.h"
#include "workloads/generator.h"
#include "workloads/profile.h"

namespace meek::sim {

// One simulation to run: scenario x workload x dynamic length x seed.
struct run_spec {
    scenario sc;
    workload_profile workload;
    u64 instructions = 200'000;
    u64 workload_seed = 0xC0FFEE;

    // Off-registry points: when set, this exact config is simulated instead
    // of sc.soc() (the scenario still provides the system kind and the
    // result's name). Lets callers sweep knobs the registry doesn't encode
    // without them being silently replaced by Table-II defaults.
    std::optional<soc_config> soc_override;

    // Optional shared workload provider (non-owning; must outlive the job).
    // When set, execute() pulls the generated program through it — a session
    // cache then builds each (profile, instructions, seed) workload once for
    // every scenario that evaluates it. When null, the job generates its own
    // private copy, byte-identical to what a cache would return.
    workload_source* workloads = nullptr;
};

// The reduced, plain-data result a job returns across the thread boundary.
struct run_outcome {
    std::string scenario;
    std::string workload;
    cycle_t cycles = 0;
    u64 instructions = 0;
    double ipc = 0.0;

    // MEEK-only reductions (zero for the other systems).
    bool verified_ok = false;
    soc_stats stats;
    u64 replayed_instructions = 0;        // summed over the little cores
    cycle_t checker_compute_cycles = 0;   // busy minus data-wait (Fig. 10)

    bool skipped = false;  // nZDC on a workload its compiler cannot build
};

// Build SoC -> run -> reduce. Safe to call concurrently from executor workers.
run_outcome execute(const run_spec& spec);

// Fan a batch of specs out across `ex`'s workers; results come back in spec
// order regardless of scheduling. Submission is cost-hinted (longest spec
// first) so mixed batches do not trail off behind one straggler.
std::vector<run_outcome> execute_all(executor& ex, const std::vector<run_spec>& specs);

// Content hash over everything that determines a spec's outcome: the system
// kind, the *effective* soc_config (override or registry defaults), the
// workload profile's content fingerprint, the dynamic length and the seed.
// Scenario/point *names* are deliberately excluded — two names wrapping the
// same physical experiment must share a fingerprint, which is what makes an
// outcome cache content-addressed.
u64 run_spec_fingerprint(const run_spec& spec);

// Relative wall-clock estimate for scheduling (submission ordering) only:
// instructions scaled by how many cores the system keeps busy. Never affects
// results.
double cost_hint(const run_spec& spec);

}  // namespace meek::sim
