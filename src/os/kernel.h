// OS kernel model (Sec. IV). The paper's kernel changes are confined to the
// context-switch functions of the scheduler (Algorithms 1 and 2) plus the
// privileged MEEK syscalls; this module reproduces exactly that surface:
//
//  * task table with application / checker / other threads,
//  * Algorithm 1 — big-core context switch: disable checking, save, pick
//    next, hook checker cores for newly-released tasks, restore, re-enable,
//  * Algorithm 2 — little-core context switch: set application mode, switch
//    to check mode iff the incoming task is a checker thread,
//  * privilege enforcement for b.hook / b.check / l.mode (Tab. I),
//  * LSL reservation: one checker thread per little core at a time; a pinned
//    checker cannot migrate until its re-execution completes.
//
// The kernel records every MEEK-ISA operation it issues so tests can assert
// the exact Algorithm-1/2 sequences.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "meek/soc.h"

namespace meek {

enum class thread_kind : u8 { application, checker, other };
enum class thread_state : u8 { new_release, ready, running, blocked, finished };

struct task {
    tid_t tid = k_invalid_tid;
    thread_kind kind = thread_kind::other;
    thread_state state = thread_state::new_release;
    std::vector<u32> checker_index;       // little cores hooked to this app
    tid_t paired_app = k_invalid_tid;     // for checker threads
    int pinned_core = -1;                 // checker: its reserved little core
    addr_t saved_pc = 0;                  // saved context (representative)
};

// One entry per MEEK-ISA instruction the kernel executes, for test assertions
// ("with just a few lines-of-code changes to the kernel...").
struct isa_call {
    std::string op;   // "b.check", "b.hook", "l.mode"
    u64 arg0 = 0;
    u64 arg1 = 0;
};

class kernel {
public:
    explicit kernel(meek_soc& soc);

    // Task management.
    tid_t create_task(thread_kind kind);
    task& get_task(tid_t tid);
    const task& get_task(tid_t tid) const;

    // Wraps an application main with its coordinator (constructor function):
    // requests `num_checkers` little cores from the OS and creates the
    // checker thread bound to them. Returns the checker thread's tid.
    tid_t register_application(tid_t app, u32 num_checkers);

    // Algorithm 1: context switch on the big core. Returns false when `next`
    // cannot be scheduled (e.g. requested checker cores unavailable).
    bool context_switch_big(tid_t next);

    // Algorithm 2: context switch on little core `core`.
    bool context_switch_little(u32 core, tid_t next);

    // Privileged MEEK syscalls. `kernel_mode` models the privilege check: the
    // instructions trap if executed from user mode (Tab. I, Priv column).
    bool sys_hook(u32 little_core, tid_t app, bool kernel_mode);
    bool sys_check(bool enable, bool kernel_mode);
    bool sys_mode(u32 little_core, core_mode mode, bool kernel_mode);

    // LSL reservation status (Sec. IV-B).
    bool lsl_reserved(u32 little_core) const;
    std::optional<tid_t> lsl_owner(u32 little_core) const;
    void release_lsl(u32 little_core);  // ownership returns after each checkpoint

    tid_t running_on_big() const { return running_big_; }
    const std::vector<isa_call>& isa_log() const { return isa_log_; }
    void clear_isa_log() { isa_log_.clear(); }

private:
    meek_soc& soc_;
    std::vector<task> tasks_;
    std::vector<std::optional<tid_t>> lsl_owner_;  // per little core
    tid_t running_big_ = k_invalid_tid;
    std::vector<tid_t> running_little_;
    std::vector<isa_call> isa_log_;
};

}  // namespace meek
