// The kernel-verification deadlock of Sec. IV-C / Fig. 5, as a focused
// event-level model.
//
// The hazard: a checker thread blocks the main thread when the finite SRAM
// log fills — the checker effectively holds a "lock" the big core needs. If
// the big core simultaneously holds a software lock the checker needs (the
// page-fault handler's memory-status lock, taken when the checker
// instruction-faults after overtaking the big core), the waits form a cycle.
//
// The fix: keep the checker at least one instruction behind the main thread
// (so the big core always faults first) and synchronize page-out with I/O so
// no page used by an unfinished checker can be evicted.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace meek {

struct pf_scenario_config {
    u32 log_capacity = 8;       // finite SRAM log entries (the induced "lock")
    u32 main_fault_instr = 15;  // main thread data-faults here (takes the lock)
    // Handler length: the deadlock needs the handler to outlast the log slack
    // (checker_fault - main_fault + log_capacity), i.e. > 13 here — the big
    // core then starves for log space while the checker waits on its lock.
    u32 pf_handler_len = 16;
    u32 checker_fault_instr = 20;  // instruction page initially absent
    u32 program_len = 60;
    bool checker_one_behind = true;  // the deadlock fix (Fig. 5b)
    u32 max_ticks = 10'000;
};

struct pf_event {
    cycle_t tick = 0;
    std::string what;
};

struct pf_result {
    bool deadlock = false;
    bool completed = false;
    cycle_t end_tick = 0;
    std::vector<pf_event> timeline;
};

pf_result simulate_page_fault_scenario(const pf_scenario_config& cfg);

// Page-out/I-O synchronization (footnote to Fig. 5b): an eviction request for
// a page inside an unfinished checker's window must defer until the checker
// passes it. Returns the tick at which the eviction is granted.
struct evict_request {
    u32 page_instr = 0;       // instruction index living on the page
    u32 checker_pos = 0;      // checker progress at request time
    u32 segment_end = 0;      // checker finishes its window here
};
cycle_t earliest_eviction_tick(const evict_request& req, cycle_t now,
                               cycle_t checker_instrs_per_tick = 1);

}  // namespace meek
