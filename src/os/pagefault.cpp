#include "os/pagefault.h"

namespace meek {

pf_result simulate_page_fault_scenario(const pf_scenario_config& cfg) {
    pf_result result;

    // Both cores fetch ahead of the instruction they are executing. The big
    // core's fetch-ahead hits the absent instruction page at
    // `checker_fault_instr` while it is committing `main_fault_instr`
    // (= checker_fault_instr - k_fetch_ahead), entering the page-fault
    // handler with the memory-status lock held. Without the one-behind rule
    // the checker's own fetch-ahead reaches the same page during that window
    // and blocks on the lock; the handler's commits then fill the finite log
    // and the main thread starves while still holding the lock — the Fig. 5(a)
    // circular wait. The rule pins the checker's fetch at most one
    // instruction past its replay point, which can never pass the main
    // thread's commit frontier, so the big core always faults first.
    constexpr u32 k_fetch_ahead = 5;

    u32 main_pos = 0;         // program instructions the main thread committed
    u32 checker_pos = 0;      // program instructions the checker replayed
    u32 program_backlog = 0;  // committed program entries not yet replayed
    u32 handler_backlog = 0;  // committed handler entries not yet replayed
    bool lock_held = false;
    bool checker_blocked = false;
    u32 handler_left = 0;
    bool fault_taken = false;
    bool page_present = false;

    auto log_used = [&] { return program_backlog + handler_backlog; };
    auto note = [&](cycle_t t, std::string what) {
        result.timeline.push_back({t, std::move(what)});
    };

    for (cycle_t tick = 0; tick < cfg.max_ticks; ++tick) {
        // --- Main thread (big core): one commit per 2 ticks, each commit
        // (program or handler) needs a free log slot.
        if (tick % 2 == 0 && main_pos < cfg.program_len) {
            const bool space = log_used() < cfg.log_capacity;
            if (handler_left > 0) {
                if (space) {
                    --handler_left;
                    ++handler_backlog;
                    if (handler_left == 0) {
                        lock_held = false;
                        page_present = true;  // the handler paged it in
                        note(tick, "main: page-fault handler done, lock released");
                    }
                }
            } else if (space) {
                ++main_pos;
                ++program_backlog;
                if (main_pos == cfg.main_fault_instr && !fault_taken) {
                    // Fetch-ahead hits the absent instruction page.
                    fault_taken = true;
                    lock_held = true;
                    handler_left = cfg.pf_handler_len;
                    note(tick, "main: instruction-page fault ahead, lock "
                               "acquired, entering handler");
                }
            }
        }

        // --- Checker (little core): one replay step per tick.
        if (checker_pos < cfg.program_len) {
            const u32 fetch_pos =
                checker_pos + (cfg.checker_one_behind ? 1 : k_fetch_ahead);
            if (checker_blocked) {
                if (!lock_held) {
                    checker_blocked = false;
                    page_present = true;
                    note(tick, "checker: lock freed, page fault handled, resuming");
                }
            } else if (fetch_pos >= cfg.checker_fault_instr &&
                       checker_pos < cfg.checker_fault_instr && !page_present) {
                if (lock_held) {
                    checker_blocked = true;
                    note(tick, "checker: instruction-fetch fault, blocked on "
                               "lock held by main");
                } else {
                    page_present = true;
                    note(tick, "checker: page fault handled (lock was free)");
                }
            }
            if (!checker_blocked) {
                // The rule lifts once the main thread has finished (the SoC
                // drain raises the watermark to infinity).
                const bool rule_wait = cfg.checker_one_behind &&
                                       checker_pos + 1 >= main_pos &&
                                       main_pos < cfg.program_len;
                if (program_backlog > 0 && !rule_wait) {
                    ++checker_pos;
                    --program_backlog;
                } else if (handler_backlog > 0) {
                    // Kernel commits are verified like any thread (Sec. IV-C).
                    --handler_backlog;
                }
            }
        }

        if (main_pos >= cfg.program_len && checker_pos >= cfg.program_len) {
            result.completed = true;
            result.end_tick = tick;
            note(tick, "both threads finished");
            return result;
        }

        // Circular wait: main starves for log space holding the lock the
        // checker needs to resume draining the log.
        if (lock_held && handler_left > 0 && log_used() >= cfg.log_capacity &&
            checker_blocked) {
            result.deadlock = true;
            result.end_tick = tick;
            note(tick, "DEADLOCK: main needs log space, checker needs lock");
            return result;
        }
    }
    result.end_tick = cfg.max_ticks;
    return result;
}

cycle_t earliest_eviction_tick(const evict_request& req, cycle_t now,
                               cycle_t checker_instrs_per_tick) {
    if (req.page_instr < req.checker_pos || req.page_instr >= req.segment_end) {
        return now;  // page outside the unfinished checker's window
    }
    const u32 distance = req.page_instr - req.checker_pos + 1;
    return now + (distance + checker_instrs_per_tick - 1) / checker_instrs_per_tick;
}

}  // namespace meek
