#include "os/kernel.h"

#include <stdexcept>

namespace meek {

kernel::kernel(meek_soc& soc)
    : soc_(soc),
      lsl_owner_(soc.config().num_little_cores),
      running_little_(soc.config().num_little_cores, k_invalid_tid) {}

tid_t kernel::create_task(thread_kind kind) {
    task t;
    t.tid = static_cast<tid_t>(tasks_.size());
    t.kind = kind;
    t.state = thread_state::new_release;
    tasks_.push_back(t);
    return t.tid;
}

task& kernel::get_task(tid_t tid) {
    if (tid >= tasks_.size()) throw std::out_of_range("bad tid");
    return tasks_[tid];
}

const task& kernel::get_task(tid_t tid) const {
    if (tid >= tasks_.size()) throw std::out_of_range("bad tid");
    return tasks_[tid];
}

tid_t kernel::register_application(tid_t app, u32 num_checkers) {
    task& a = get_task(app);
    if (a.kind != thread_kind::application) {
        throw std::invalid_argument("register_application on non-app task");
    }
    // Coordinator function inserted before main (Sec. II): request checker
    // resources from the OS.
    const u32 available = static_cast<u32>(lsl_owner_.size());
    const u32 granted = std::min(num_checkers, available);
    const tid_t checker = create_task(thread_kind::checker);
    get_task(checker).paired_app = app;
    task& a2 = get_task(app);  // re-fetch: create_task may reallocate
    for (u32 i = 0; i < granted; ++i) a2.checker_index.push_back(i);
    return checker;
}

bool kernel::context_switch_big(tid_t next) {
    task& t = get_task(next);

    // Al. 1 line 3: MEEK.b.check(DISABLE) — kernel must not be verified with
    // the application thread's checkers while we mutate scheduler state.
    sys_check(false, /*kernel_mode=*/true);
    // (Kernel.Intr(DISABLE) / Context.save: modeled by the task table.)
    if (running_big_ != k_invalid_tid) {
        get_task(running_big_).state = thread_state::ready;
    }

    if (t.state == thread_state::new_release) {
        // Al. 1 lines 10-13: hook the little cores to the big core.
        for (const u32 little : t.checker_index) {
            if (!sys_hook(little, next, /*kernel_mode=*/true)) {
                sys_check(true, true);
                return false;  // contention on little cores
            }
        }
        t.state = thread_state::ready;
    }

    t.state = thread_state::running;
    running_big_ = next;

    // Al. 1 line 20: MEEK.b.check(ENABLE) — only application threads with
    // hooked checkers get verified.
    sys_check(t.kind == thread_kind::application && !t.checker_index.empty(), true);
    return true;
}

bool kernel::context_switch_little(u32 core, tid_t next) {
    if (core >= running_little_.size()) return false;
    task& t = get_task(next);

    // Al. 2 line 3: default to application mode on every switch.
    sys_mode(core, core_mode::application, /*kernel_mode=*/true);

    if (t.kind == thread_kind::checker) {
        // A pinned checker cannot migrate before re-execution completes.
        if (t.pinned_core >= 0 && t.pinned_core != static_cast<int>(core)) {
            return false;
        }
        // LSL is reserved for a single checker thread (Sec. IV-B).
        if (lsl_owner_[core].has_value() && *lsl_owner_[core] != next) {
            return false;
        }
        lsl_owner_[core] = next;
        t.pinned_core = static_cast<int>(core);
        // Al. 2 lines 6-8.
        sys_mode(core, core_mode::check, true);
    }

    if (running_little_[core] != k_invalid_tid &&
        running_little_[core] != next) {
        task& prev = get_task(running_little_[core]);
        if (prev.state == thread_state::running) prev.state = thread_state::ready;
    }
    t.state = thread_state::running;
    running_little_[core] = next;
    return true;
}

bool kernel::sys_hook(u32 little_core, tid_t app, bool kernel_mode) {
    if (!kernel_mode) return false;  // Tab. I: priv 1
    if (little_core >= lsl_owner_.size()) return false;
    // b.hook can contend for little cores: a core checking another app
    // cannot be re-hooked until released.
    if (lsl_owner_[little_core].has_value()) {
        const task& owner = get_task(*lsl_owner_[little_core]);
        if (owner.paired_app != app && *lsl_owner_[little_core] != app) return false;
    }
    isa_log_.push_back({"b.hook", little_core, app});
    return true;
}

bool kernel::sys_check(bool enable, bool kernel_mode) {
    if (!kernel_mode) return false;
    isa_log_.push_back({"b.check", enable ? 1u : 0u, 0});
    soc_.set_checking(enable);
    return true;
}

bool kernel::sys_mode(u32 little_core, core_mode mode, bool kernel_mode) {
    if (!kernel_mode) return false;
    if (little_core >= lsl_owner_.size()) return false;
    isa_log_.push_back(
        {"l.mode", little_core, mode == core_mode::check ? 1u : 0u});
    return true;
}

bool kernel::lsl_reserved(u32 little_core) const {
    return little_core < lsl_owner_.size() && lsl_owner_[little_core].has_value();
}

std::optional<tid_t> kernel::lsl_owner(u32 little_core) const {
    return little_core < lsl_owner_.size() ? lsl_owner_[little_core] : std::nullopt;
}

void kernel::release_lsl(u32 little_core) {
    if (little_core < lsl_owner_.size()) {
        if (lsl_owner_[little_core].has_value()) {
            get_task(*lsl_owner_[little_core]).pinned_core = -1;
        }
        lsl_owner_[little_core].reset();
    }
}

}  // namespace meek
